package serve

import (
	"websyn/internal/match"

	"fmt"
	"sync"
	"testing"
)

func TestCacheBasics(t *testing.T) {
	c := newRequestCache(2, 1) // one shard: deterministic CLOCK order
	if _, ok := c.Get([]byte("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put([]byte("a"), match.Response{Query: "a"})
	c.Put([]byte("b"), match.Response{Query: "b"})
	if r, ok := c.Get([]byte("a")); !ok || r.Query != "a" {
		t.Fatalf("Get(a) = %+v, %v", r, ok)
	}
	// "a" carries the reference bit, "b" does not; inserting "c" sweeps
	// the clock hand past "a" (clearing its bit, second chance) and
	// evicts "b".
	c.Put([]byte("c"), match.Response{Query: "c"})
	if _, ok := c.Get([]byte("b")); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get([]byte("a")); !ok {
		t.Fatal("a was evicted despite its reference bit")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 1 eviction", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate)
	}
	if st.Shards != 1 || len(st.ShardSizes) != 1 || st.ShardSizes[0] != 2 {
		t.Fatalf("shard stats = %+v, want 1 shard of 2 entries", st)
	}
}

// TestCacheSecondChance pins the CLOCK property that distinguishes it
// from FIFO: a referenced entry survives a full hand sweep, an
// unreferenced one does not.
func TestCacheSecondChance(t *testing.T) {
	c := newRequestCache(4, 1)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Put([]byte(k), match.Response{Query: k})
	}
	// Reference a and c; the hand rests at slot 0.
	c.Get([]byte("a"))
	c.Get([]byte("c"))
	// Inserting e: hand clears a's bit, then evicts b (unreferenced).
	c.Put([]byte("e"), match.Response{Query: "e"})
	if _, ok := c.Get([]byte("b")); ok {
		t.Fatal("b survived: hand should have evicted the first unreferenced entry")
	}
	for _, k := range []string{"a", "c", "d", "e"} {
		if _, ok := c.Get([]byte(k)); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newRequestCache(2, 1)
	c.Put([]byte("a"), match.Response{Query: "a", Remainder: "old"})
	c.Put([]byte("a"), match.Response{Query: "a", Remainder: "new"})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	if r, _ := c.Get([]byte("a")); r.Remainder != "new" {
		t.Fatalf("Put did not update: %+v", r)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newRequestCache(0, 0) // nil cache: always miss, never panic
	if c != nil {
		t.Fatal("capacity 0 should return nil cache")
	}
	c.Put([]byte("a"), match.Response{})
	if _, ok := c.Get([]byte("a")); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Capacity != 0 || st.Hits != 0 || st.Shards != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

// TestCacheShardCount pins the stripe-count resolution: powers of two,
// clamped by capacity, auto mode keeps shards at least 8 entries deep.
func TestCacheShardCount(t *testing.T) {
	cases := []struct {
		requested, capacity, want int
	}{
		{1, 4096, 1},
		{2, 4096, 2},
		{3, 4096, 2}, // rounded down to a power of two
		{16, 4096, 16},
		{16, 4, 4}, // never more shards than entries
		{64, 100, 64},
	}
	for _, tc := range cases {
		if got := cacheShardCount(tc.requested, tc.capacity); got != tc.want {
			t.Errorf("cacheShardCount(%d, %d) = %d, want %d", tc.requested, tc.capacity, got, tc.want)
		}
	}
	// Auto mode (requested <= 0) is machine-dependent; pin the
	// invariants instead of the value.
	for _, capacity := range []int{1, 8, 64, 4096} {
		got := cacheShardCount(0, capacity)
		if got < 1 || got > capacity || got&(got-1) != 0 {
			t.Errorf("cacheShardCount(0, %d) = %d: want a power of two in [1, %d]", capacity, got, capacity)
		}
	}
}

// TestCacheSharded exercises the striped layout: entries distribute
// across shards, totals add up, and every key still round-trips.
func TestCacheSharded(t *testing.T) {
	c := newRequestCache(256, 8)
	if got := len(c.shards); got != 8 {
		t.Fatalf("shard count %d, want 8", got)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.Put([]byte(k), match.Response{Query: k})
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r, ok := c.Get([]byte(k)); !ok || r.Query != k {
			t.Fatalf("Get(%s) = %+v, %v", k, r, ok)
		}
	}
	st := c.Stats()
	if st.Shards != 8 || len(st.ShardSizes) != 8 {
		t.Fatalf("stats shards = %+v", st)
	}
	sum, populated := 0, 0
	for _, n := range st.ShardSizes {
		sum += n
		if n > 0 {
			populated++
		}
	}
	if sum != st.Size || st.Size != 200 {
		t.Fatalf("shard sizes sum %d, Size %d, want 200", sum, st.Size)
	}
	if populated < 2 {
		t.Fatalf("hash sent 200 keys into %d of 8 shards", populated)
	}
}

// TestCachedHitAllocBudget pins the hit path's allocation budget at
// zero: a cached DoView builds its key in a stack buffer and hands out
// a pointer into the immutable cache entry — no copies, no heap. This
// is the request-path analogue of TestEngineAllocBudget (which covers
// the uncached arena path).
func TestCachedHitAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation disables the inlining the zero-alloc path relies on")
	}
	s := NewServer(testSnapshot(), Config{CacheSize: 64})
	req := match.Request{Query: "showtimes for indy 4 near san francisco"}
	if err := s.DoView(req, func(*match.Response, bool) {}); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(500, func() {
		if err := s.DoView(req, func(*match.Response, bool) {}); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("cached DoView = %v allocs/op, want 0", got)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run with
// -race this verifies the locking discipline, and the invariant checks
// verify no entry is lost or corrupted under contention.
func TestCacheConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
		capacity   = 64
	)
	c := newRequestCache(capacity, 4)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("q%d", (g*31+i)%128)
				if r, ok := c.Get([]byte(key)); ok {
					if r.Query != key {
						t.Errorf("cache returned %q for key %q", r.Query, key)
						return
					}
				} else {
					c.Put([]byte(key), match.Response{Query: key})
				}
			}
		}(g)
	}
	wg.Wait()
	// Per-shard capacity is ceil(64/4) = 16; the whole cache never
	// exceeds shards * per-shard.
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew to %d, capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
	// Every cached value must still map key -> matching payload.
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("q%d", i)
		if r, ok := c.Get([]byte(key)); ok && r.Query != key {
			t.Fatalf("corrupted entry: key %q holds %q", key, r.Query)
		}
	}
}
