package serve

import (
	"websyn/internal/match"

	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", match.Response{Query: "a"})
	c.Put("b", match.Response{Query: "b"})
	if r, ok := c.Get("a"); !ok || r.Query != "a" {
		t.Fatalf("Get(a) = %+v, %v", r, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", match.Response{Query: "c"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 1 eviction", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.Put("a", match.Response{Query: "a", Remainder: "old"})
	c.Put("a", match.Response{Query: "a", Remainder: "new"})
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	if r, _ := c.Get("a"); r.Remainder != "new" {
		t.Fatalf("Put did not update: %+v", r)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0) // nil cache: always miss, never panic
	if c != nil {
		t.Fatal("capacity 0 should return nil cache")
	}
	c.Put("a", match.Response{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if st := c.Stats(); st.Capacity != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

// TestLRUConcurrent hammers the cache from many goroutines; run with
// -race this verifies the locking discipline, and the invariant checks
// verify no entry is lost or corrupted under contention.
func TestLRUConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
		capacity   = 64
	)
	c := newLRU(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("q%d", (g*31+i)%128)
				if r, ok := c.Get(key); ok {
					if r.Query != key {
						t.Errorf("cache returned %q for key %q", r.Query, key)
						return
					}
				} else {
					c.Put(key, match.Response{Query: key})
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("cache grew to %d, capacity %d", n, capacity)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
	// Every cached value must still map key -> matching payload.
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("q%d", i)
		if r, ok := c.Get(key); ok && r.Query != key {
			t.Fatalf("corrupted entry: key %q holds %q", key, r.Query)
		}
	}
}
