package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"websyn/internal/rewrite"
)

// testCameraVocabulary is a hand-built camera vocabulary: a continuous
// price column with band/comparator/unit lexicons and a brand dictionary.
func testCameraVocabulary() *rewrite.Vocabulary {
	return &rewrite.Vocabulary{
		Domain: "cameras",
		Numeric: []rewrite.NumericColumn{{
			Name: "price", Unit: "usd", Min: 100, Max: 1000,
			UnitTokens: []string{"dollars", "usd"},
			Bands:      []rewrite.Band{{Token: "cheap", Op: "lte", Value: 250}},
			Comparators: []rewrite.Comparator{
				{Token: "under", Op: "lt"}, {Token: "over", Op: "gt"},
			},
		}},
		Categorical: []rewrite.CategoricalColumn{
			{Name: "brand", Values: []string{"canon", "nikon"}},
		},
	}
}

// vocabServer builds a standalone server over the movie test snapshot
// with the movie vocabulary attached.
func vocabServer(cfg Config) *Server {
	snap := testSnapshot()
	snap.Vocab = testVocabulary()
	return NewServer(snap, cfg)
}

func TestV2MatchSingle(t *testing.T) {
	ts := httptest.NewServer(vocabServer(Config{CacheSize: 16}).Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v2/match",
		`{"query": "indiana jones 4 2008 adventure tickets", "explain": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Count != 1 || len(vr.Results) != 1 {
		t.Fatalf("count %d, %d results", vr.Count, len(vr.Results))
	}
	r := vr.Results[0]
	if r.Error != "" || r.Response == nil {
		t.Fatalf("result = %+v", r)
	}
	if len(r.Matches) != 1 || r.Matches[0].EntityID != 0 {
		t.Fatalf("matches = %+v", r.Matches)
	}
	// The v1 fields keep their v1 meaning: Remainder is everything the
	// entity match left, Residual is what the rewrite stage left.
	if r.Remainder != "2008 adventure tickets" {
		t.Fatalf("remainder = %q", r.Remainder)
	}
	if r.Residual != "tickets" {
		t.Fatalf("residual = %q", r.Residual)
	}
	if len(r.Attributes) != 2 {
		t.Fatalf("attributes = %+v", r.Attributes)
	}
	if p := r.Attributes[0]; p.Column != "year" || p.Op != "eq" || p.Value != 2008 || p.Source != "value" {
		t.Errorf("year predicate = %+v", p)
	}
	if p := r.Attributes[1]; p.Column != "genre" || p.Op != "eq" || p.Text != "adventure" {
		t.Errorf("genre predicate = %+v", p)
	}
	// Explain carries rewrite-stage provenance.
	sawRewrite := false
	for _, step := range r.Trace {
		if step.Stage == "rewrite" {
			sawRewrite = true
		}
	}
	if !sawRewrite {
		t.Error("explain trace has no rewrite steps")
	}
}

// TestV2MatchNoVocabulary pins graceful degradation: without a mined
// vocabulary the v2 surface still answers, with empty attributes and
// the residual mirroring the remainder.
func TestV2MatchNoVocabulary(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{}).Handler())
	defer ts.Close()

	_, data := postJSON(t, ts.URL+"/v2/match", `{"query": "indy 4 near san fran"}`)
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	r := vr.Results[0]
	if r.Error != "" || len(r.Attributes) != 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.Residual != r.Remainder {
		t.Fatalf("residual %q != remainder %q", r.Residual, r.Remainder)
	}
}

// TestV2CacheIsolation proves v1 and v2 never share a cache entry for
// the same query: the rewrite flag is part of the request key.
func TestV2CacheIsolation(t *testing.T) {
	ts := httptest.NewServer(vocabServer(Config{CacheSize: 16}).Handler())
	defer ts.Close()

	const body = `{"query": "indiana jones 4 2008 adventure"}`
	_, v1data := postJSON(t, ts.URL+"/v1/match", body)
	var v1r V1Response
	if err := json.Unmarshal(v1data, &v1r); err != nil {
		t.Fatal(err)
	}
	if len(v1r.Results[0].Attributes) != 0 || v1r.Results[0].Residual != "" {
		t.Fatalf("v1 result carries v2 fields: %+v", v1r.Results[0])
	}

	_, v2data := postJSON(t, ts.URL+"/v2/match", body)
	var v2r V1Response
	if err := json.Unmarshal(v2data, &v2r); err != nil {
		t.Fatal(err)
	}
	r := v2r.Results[0]
	if r.Cached {
		t.Fatal("v2 request hit the v1 cache entry")
	}
	if len(r.Attributes) == 0 {
		t.Fatalf("v2 result has no attributes: %+v", r)
	}

	// A repeated v2 request hits its own entry, attributes intact.
	_, v2again := postJSON(t, ts.URL+"/v2/match", body)
	var v2r2 V1Response
	if err := json.Unmarshal(v2again, &v2r2); err != nil {
		t.Fatal(err)
	}
	if !v2r2.Results[0].Cached {
		t.Fatal("repeated v2 request missed the cache")
	}
	if len(v2r2.Results[0].Attributes) != len(r.Attributes) {
		t.Fatalf("cached v2 result lost attributes: %+v", v2r2.Results[0])
	}
}

// TestV2RewriteNotClientSettable pins the API-version-is-the-switch
// stance: the rewrite flag has no JSON surface, so a v1 body trying to
// smuggle it is rejected by the strict decoder.
func TestV2RewriteNotClientSettable(t *testing.T) {
	ts := httptest.NewServer(vocabServer(Config{}).Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4", "rewrite": true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("smuggled rewrite flag: status %d, body %s", resp.StatusCode, data)
	}
}

// TestV1FrozenWithVocabulary is the golden regression for the v1
// freeze: every v1-era surface must return byte-identical bodies
// whether or not the snapshot carries an attribute vocabulary.
func TestV1FrozenWithVocabulary(t *testing.T) {
	bare := httptest.NewServer(NewServer(testSnapshot(), Config{CacheSize: -1}).Handler())
	defer bare.Close()
	vocab := httptest.NewServer(vocabServer(Config{CacheSize: -1}).Handler())
	defer vocab.Close()

	queries := []string{
		"indy 4 near san francisco",
		"indiana jones 4 2008 adventure", // remainder the rewriter WOULD consume
		"madagascar 2 trailer",
		"nothing here at all",
	}
	for _, q := range queries {
		body := `{"query": ` + jstr(q) + `, "explain": true}`
		_, a := postJSON(t, bare.URL+"/v1/match", body)
		_, b := postJSON(t, vocab.URL+"/v1/match", body)
		if an, bn := stripTiming(t, a), stripTiming(t, b); an != bn {
			t.Errorf("/v1/match %q diverged with vocabulary:\n got %s\nwant %s", q, bn, an)
		}

		qURL := "/match?q=" + strings.ReplaceAll(q, " ", "+")
		_, ga := httpGet(t, bare.URL+qURL)
		_, gb := httpGet(t, vocab.URL+qURL)
		if !bytes.Equal(ga, gb) {
			t.Errorf("/match %q diverged with vocabulary:\n got %s\nwant %s", q, gb, ga)
		}
	}

	// Batch, both shapes at once.
	batch, _ := json.Marshal(map[string]any{"queries": queries})
	_, a := postJSON(t, bare.URL+"/v1/match", `{"queries": `+string(mustJSON(queries))+`}`)
	_, b := postJSON(t, vocab.URL+"/v1/match", `{"queries": `+string(mustJSON(queries))+`}`)
	if an, bn := stripTiming(t, a), stripTiming(t, b); an != bn {
		t.Errorf("/v1/match batch diverged with vocabulary:\n got %s\nwant %s", bn, an)
	}
	for _, path := range []string{"/match/batch"} {
		ra, err := http.Post(bare.URL+path, "application/json", bytes.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := http.Post(vocab.URL+path, "application/json", bytes.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		ba := readAll(t, ra)
		bb := readAll(t, rb)
		if !bytes.Equal(ba, bb) {
			t.Errorf("%s diverged with vocabulary:\n got %s\nwant %s", path, bb, ba)
		}
	}

	// A literal golden body (timing stripped, keys normalized): pinned
	// text, so a field leaking into v1 fails loudly even if it leaks
	// into both servers symmetrically.
	_, g := postJSON(t, vocab.URL+"/v1/match", `{"query": "madagascar 2 trailer"}`)
	const golden = `{"count":1,"results":[{"matches":[{"canonical":"Madagascar: Escape 2 Africa","end":2,"entity_id":1,"method":"trie","score":0.9,"source":"mined","span":"madagascar 2","start":0}],"query":"madagascar 2 trailer","remainder":"trailer"}]}`
	if got := stripTiming(t, g); got != golden {
		t.Errorf("v1 golden body diverged:\n got %s\nwant %s", got, golden)
	}
}

// TestV1FederatedFrozenWithVocabulary extends the freeze to the
// registry: federated v1 responses are byte-identical (modulo timing)
// with and without per-domain vocabularies.
func TestV1FederatedFrozenWithVocabulary(t *testing.T) {
	bare := httptest.NewServer(testRegistry(t, Config{CacheSize: -1}).Handler())
	defer bare.Close()
	vocab := httptest.NewServer(testVocabRegistry(t, Config{CacheSize: -1}).Handler())
	defer vocab.Close()

	for _, body := range []string{
		`{"query": "indy 4 digital rebel xt cheap adventure", "explain": true}`,
		`{"query": "madagascar 2", "domain": "movies"}`,
		`{"query": "nikon d 80", "domains": ["movies", "cameras"]}`,
	} {
		_, a := postJSON(t, bare.URL+"/v1/match", body)
		_, b := postJSON(t, vocab.URL+"/v1/match", body)
		if an, bn := stripTiming(t, a), stripTiming(t, b); an != bn {
			t.Errorf("federated /v1/match %s diverged with vocabularies:\n got %s\nwant %s", body, bn, an)
		}
	}
}

// testVocabRegistry is testRegistry with per-domain vocabularies.
func testVocabRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	reg := NewRegistry(cfg)
	movies := testSnapshot()
	movies.Vocab = testVocabulary()
	cameras := testCamerasSnapshot()
	cameras.Vocab = testCameraVocabulary()
	if _, err := reg.Add("movies", movies, SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("cameras", cameras, SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestV2FederatedNoVocabularyLeak is the federation isolation test:
// when two domains both match a query, the merged response's predicates
// come from the winning domain's vocabulary only — a loser domain's
// lexicon must not annotate the winner's result.
func TestV2FederatedNoVocabularyLeak(t *testing.T) {
	ts := httptest.NewServer(testVocabRegistry(t, Config{CacheSize: 16}).Handler())
	defer ts.Close()

	// Both domains match ("indy 4" in movies at 0.8125, "digital rebel
	// xt" in cameras at 0.9); cameras wins the merge. "cheap" is camera
	// vocabulary, "adventure" is movie vocabulary.
	_, data := postJSON(t, ts.URL+"/v2/match",
		`{"query": "indy 4 digital rebel xt cheap adventure"}`)
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	r := vr.Results[0]
	if r.Error != "" || len(r.Matches) < 2 {
		t.Fatalf("result = %+v", r)
	}
	if r.Matches[0].Domain != "cameras" {
		t.Fatalf("winner = %+v, want cameras on top", r.Matches[0])
	}
	if len(r.Attributes) != 1 {
		t.Fatalf("attributes = %+v, want the single camera band predicate", r.Attributes)
	}
	p := r.Attributes[0]
	if p.Column != "price" || p.Op != "lte" || p.Source != "band" {
		t.Errorf("predicate = %+v", p)
	}
	if p.Domain != "cameras" {
		t.Errorf("predicate domain = %q, want cameras provenance", p.Domain)
	}
	// The movie-only token survives in the winner's residual instead of
	// leaking through the movie vocabulary as a genre predicate.
	for _, p := range r.Attributes {
		if p.Column == "genre" {
			t.Errorf("movie vocabulary leaked into the cameras result: %+v", p)
		}
	}
	if r.Residual != "indy 4 adventure" {
		t.Errorf("residual = %q, want the winner's", r.Residual)
	}

	// Explicit single-domain routing through v2: movie predicates only.
	_, data = postJSON(t, ts.URL+"/v2/match",
		`{"query": "indy 4 2008 adventure", "domain": "movies"}`)
	var mv V1Response
	if err := json.Unmarshal(data, &mv); err != nil {
		t.Fatal(err)
	}
	mr := mv.Results[0]
	if mr.Error != "" || len(mr.Attributes) != 2 {
		t.Fatalf("movies result = %+v", mr)
	}
	// Exact routing carries provenance at the response level (like span
	// matches); the per-predicate stamp is a federation-only construct.
	if mr.Domain != "movies" {
		t.Errorf("routed response domain = %q", mr.Domain)
	}
	for _, p := range mr.Attributes {
		if p.Domain != "" {
			t.Errorf("routed predicate stamped outside federation: %+v", p)
		}
		if p.Column != "year" && p.Column != "genre" {
			t.Errorf("non-movie predicate: %+v", p)
		}
	}
}

// TestLegacyDeprecationHeaders pins the deprecation shim: the pre-v1
// endpoints announce Deprecation/Sunset/successor, the versioned
// endpoints do not.
func TestLegacyDeprecationHeaders(t *testing.T) {
	ts := httptest.NewServer(vocabServer(Config{}).Handler())
	defer ts.Close()

	legacy := map[string]func() *http.Response{
		"/match": func() *http.Response {
			r, _ := httpGet(t, ts.URL+"/match?q=indy+4")
			return r
		},
		"/fuzzy": func() *http.Response {
			r, _ := httpGet(t, ts.URL+"/fuzzy?q=indy")
			return r
		},
		"/match/batch": func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/match/batch", `{"queries": ["indy 4"]}`)
			return r
		},
	}
	for path, do := range legacy {
		resp := do()
		if got := resp.Header.Get("Deprecation"); got != legacyDeprecation {
			t.Errorf("%s: Deprecation = %q, want %q", path, got, legacyDeprecation)
		}
		if got := resp.Header.Get("Sunset"); got != legacySunset {
			t.Errorf("%s: Sunset = %q, want %q", path, got, legacySunset)
		}
		if got := resp.Header.Get("Link"); got != legacySuccessor {
			t.Errorf("%s: Link = %q, want %q", path, got, legacySuccessor)
		}
	}
	for _, path := range []string{"/v1/match", "/v2/match"} {
		resp, _ := postJSON(t, ts.URL+path, `{"query": "indy 4"}`)
		if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
			t.Errorf("%s stamped deprecation headers", path)
		}
	}
}

// TestStatszV2Shape pins the stats backward compatibility: a v1-only
// server's /statsz has no v2 keys; they appear after v2 traffic.
func TestStatszV2Shape(t *testing.T) {
	ts := httptest.NewServer(vocabServer(Config{}).Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4"}`)
	_, body := httpGet(t, ts.URL+"/statsz")
	if bytes.Contains(body, []byte(`"v2"`)) {
		t.Fatalf("v1-only /statsz leaks v2 keys: %s", body)
	}

	postJSON(t, ts.URL+"/v2/match", `{"query": "indy 4"}`)
	_, body = httpGet(t, ts.URL+"/statsz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.V2 != 1 || st.Requests.V2Queries != 1 || st.Latency.V2 == nil {
		t.Fatalf("v2 counters = %d/%d, latency %v", st.Requests.V2, st.Requests.V2Queries, st.Latency.V2)
	}
}

func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func mustJSON(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
