package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"websyn/internal/match"
)

// testCamerasSnapshot is a second vertical for multi-domain tests: the
// paper's D2 scenario in miniature.
func testCamerasSnapshot() *Snapshot {
	d := match.NewDictionary()
	d.Add("Canon EOS 350D", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("digital rebel xt", match.Entry{EntityID: 0, Score: 0.9, Source: "mined"})
	d.Add("Nikon D80", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("nikon d 80", match.Entry{EntityID: 1, Score: 0.7, Source: "mined"})
	return &Snapshot{
		Dataset: "Cameras",
		MinSim:  0.55,
		Fuzzy:   d.NewFuzzyIndex(0.55).Packed(),
		Canonicals: []string{
			"Canon EOS 350D",
			"Nikon D80",
		},
		Synonyms: map[string][]string{
			"canon eos 350d": {"digital rebel xt"},
		},
		Dict: d,
	}
}

// testRegistry builds a two-domain registry: movies (default) + cameras.
func testRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	reg := NewRegistry(cfg)
	if _, err := reg.Add("movies", testSnapshot(), SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("cameras", testCamerasSnapshot(), SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryAddValidation(t *testing.T) {
	reg := NewRegistry(Config{})
	for _, bad := range []string{"", "*", "a=b", "a,b", "a b"} {
		if _, err := reg.Add(bad, testSnapshot(), SnapshotMeta{}); err == nil {
			t.Errorf("Add(%q) accepted an invalid domain name", bad)
		}
	}
	if _, err := reg.Add("movies", testSnapshot(), SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("movies", testSnapshot(), SnapshotMeta{}); err == nil {
		t.Error("duplicate Add accepted")
	}
	if _, err := reg.Add("cameras", nil, SnapshotMeta{}); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := reg.SetDefault("nope"); err == nil {
		t.Error("SetDefault accepted an unregistered domain")
	}
	if reg.DefaultName() != "movies" {
		t.Errorf("default = %q, want first registered", reg.DefaultName())
	}
}

func TestRegistryExactRouting(t *testing.T) {
	ts := httptest.NewServer(testRegistry(t, Config{CacheSize: 16}).Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"query": "digital rebel xt price", "domain": "cameras"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	r := vr.Results[0]
	if r.Error != "" || r.Response == nil {
		t.Fatalf("result = %+v", r)
	}
	if r.Domain != "cameras" {
		t.Fatalf("response domain %q, want cameras", r.Domain)
	}
	if len(r.Matches) != 1 || r.Matches[0].Canonical != "Canon EOS 350D" {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Remainder != "price" {
		t.Fatalf("remainder = %q", r.Remainder)
	}

	// The same query routed at movies resolves nothing — and says which
	// domain said so.
	_, data = postJSON(t, ts.URL+"/v1/match", `{"query": "digital rebel xt price", "domain": "movies"}`)
	var vr2 V1Response
	if err := json.Unmarshal(data, &vr2); err != nil {
		t.Fatal(err)
	}
	if r := vr2.Results[0]; r.Domain != "movies" || len(r.Matches) != 0 {
		t.Fatalf("movies-routed camera query: %+v", r)
	}

	// Unknown domain: a per-item error, so one bad item cannot fail a
	// whole batch.
	_, data = postJSON(t, ts.URL+"/v1/match",
		`{"queries": [{"query": "indy 4", "domain": "movies"}, {"query": "indy 4", "domain": "books"}]}`)
	var vr3 V1Response
	if err := json.Unmarshal(data, &vr3); err != nil {
		t.Fatal(err)
	}
	if vr3.Results[0].Error != "" || vr3.Results[0].Domain != "movies" {
		t.Fatalf("good item: %+v", vr3.Results[0])
	}
	if !strings.Contains(vr3.Results[1].Error, `unknown domain "books"`) {
		t.Fatalf("bad item error = %q", vr3.Results[1].Error)
	}
}

func TestRegistryFederated(t *testing.T) {
	ts := httptest.NewServer(testRegistry(t, Config{CacheSize: 16}).Handler())
	defer ts.Close()

	// A query spanning two verticals, no domain named: fan out and merge
	// by score — the camera entry (0.9) outranks the movie (0.8125).
	_, data := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 digital rebel xt", "explain": true}`)
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	r := vr.Results[0]
	if r.Error != "" || r.Response == nil {
		t.Fatalf("result = %+v", r)
	}
	if r.Domain != "" {
		t.Fatalf("federated response claims a single domain %q", r.Domain)
	}
	if len(r.Matches) != 2 {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Matches[0].Canonical != "Canon EOS 350D" || r.Matches[0].Domain != "cameras" {
		t.Fatalf("top match = %+v", r.Matches[0])
	}
	if r.Matches[1].Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" || r.Matches[1].Domain != "movies" {
		t.Fatalf("second match = %+v", r.Matches[1])
	}
	// The winning domain's remainder: cameras matched "digital rebel xt"
	// and left "indy 4" over.
	if r.Remainder != "indy 4" {
		t.Fatalf("remainder = %q", r.Remainder)
	}
	if len(r.Trace) == 0 {
		t.Fatal("explain produced no federated trace")
	}
	for _, step := range r.Trace {
		if step.Domain != "movies" && step.Domain != "cameras" {
			t.Fatalf("trace step without domain provenance: %+v", step)
		}
	}

	// An identical fan-out is answered from every domain's cache.
	_, data = postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 digital rebel xt", "explain": true}`)
	var vr2 V1Response
	if err := json.Unmarshal(data, &vr2); err != nil {
		t.Fatal(err)
	}
	if !vr2.Results[0].Cached {
		t.Fatal("repeated federated query missed the caches")
	}
	vr2.Results[0].Cached = false
	vr2.Results[0].Timing = vr.Results[0].Timing
	if !jsonEqual(t, vr.Results[0], vr2.Results[0]) {
		t.Fatalf("cached federated response diverged:\n%+v\n%+v", vr.Results[0], vr2.Results[0])
	}
}

func TestRegistryDomainsList(t *testing.T) {
	ts := httptest.NewServer(testRegistry(t, Config{}).Handler())
	defer ts.Close()

	// Explicit wildcard: same as the omitted form.
	_, data := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 digital rebel xt", "domains": ["*"]}`)
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if len(vr.Results[0].Matches) != 2 {
		t.Fatalf("wildcard fan-out matches = %+v", vr.Results[0].Matches)
	}

	// A single-domain list is an exact route the client asked for by
	// name, so the response is stamped.
	_, data = postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4", "domains": ["movies"]}`)
	var vr2 V1Response
	if err := json.Unmarshal(data, &vr2); err != nil {
		t.Fatal(err)
	}
	if vr2.Results[0].Domain != "movies" || len(vr2.Results[0].Matches) != 1 {
		t.Fatalf("single-domain list: %+v", vr2.Results[0])
	}

	// Unknown names in domains are a request-level 400 — the fan-out set
	// is malformed, not one item.
	resp, data := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4", "domains": ["movies", "books"]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), `unknown domain \"books\"`) {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}

	// domain and domains cannot be combined.
	resp, data = postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4", "domain": "movies", "domains": ["*"]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "mutually exclusive") {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
}

func TestRegistryLegacyDelegation(t *testing.T) {
	reg := testRegistry(t, Config{})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	// Default domain (movies, first registered) serves domainless legacy
	// traffic.
	resp, err := http.Get(ts.URL + "/match?q=" + url.QueryEscape("indy 4 tickets"))
	if err != nil {
		t.Fatal(err)
	}
	var mr MatchResult
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mr.Matches) != 1 || mr.Matches[0].EntityID != 0 || mr.Remainder != "tickets" {
		t.Fatalf("legacy default-domain match: %+v", mr)
	}

	// ?domain= picks another vertical.
	resp, err = http.Get(ts.URL + "/match?domain=cameras&q=" + url.QueryEscape("digital rebel xt"))
	if err != nil {
		t.Fatal(err)
	}
	var cr MatchResult
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cr.Matches) != 1 || cr.Matches[0].Canonical != "Canon EOS 350D" {
		t.Fatalf("legacy cameras match: %+v", cr)
	}

	// Unknown domain: 404.
	resp, err = http.Get(ts.URL + "/match?domain=books&q=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown legacy domain: status %d", resp.StatusCode)
	}
}

// TestRegistrySingleDomainDifferential is the byte-identity proof the
// legacy contract rests on: a registry serving one domain answers every
// domainless request exactly like a standalone Server over the same
// snapshot. /v1/match responses carry wall-clock timing, so those are
// compared with the timing fields normalized; the legacy endpoints are
// compared byte for byte.
func TestRegistrySingleDomainDifferential(t *testing.T) {
	cfg := Config{CacheSize: 16, FuzzyShards: 2}
	standalone := httptest.NewServer(NewServer(testSnapshot(), cfg).Handler())
	defer standalone.Close()
	reg := NewRegistry(cfg)
	if _, err := reg.Add("default", testSnapshot(), SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	registry := httptest.NewServer(reg.Handler())
	defer registry.Close()

	get := []string{
		"/match?q=" + url.QueryEscape("indy 4 near san fran"),
		"/match?q=" + url.QueryEscape("madagascar 2 dvd"),
		"/fuzzy?q=" + url.QueryEscape("madagascr"),
		"/synonyms?u=" + url.QueryEscape("Madagascar: Escape 2 Africa"),
		"/synonyms?u=nothing",
		"/match?q=",
		"/healthz",
	}
	for _, path := range get {
		a, aBody := httpGet(t, standalone.URL+path)
		b, bBody := httpGet(t, registry.URL+path)
		if a.StatusCode != b.StatusCode || string(aBody) != string(bBody) {
			t.Errorf("GET %s diverged:\nstandalone %d: %s\nregistry %d: %s",
				path, a.StatusCode, aBody, b.StatusCode, bBody)
		}
	}

	post := []struct{ path, body string }{
		{"/match/batch", `{"queries": ["indy 4", "madagascar 2", "nothing here"]}`},
		{"/match/batch", `{"queries": []}`},
		{"/match/batch", `not json`},
		{"/v1/match", `{"query": "indy 4 near san fran", "explain": true}`},
		{"/v1/match", `{"queries": [{"query": "indy 4"}, {"query": "madagascr", "mode": "fuzzy"}], "top_k": 2}`},
		{"/v1/match", `{"query": ""}`},
		{"/v1/match", `{"query": "x", "queries": [{"query": "y"}]}`},
		{"/v1/match", `{"query": "x", "mode": "bogus"}`},
		{"/v1/match", `{"unknown_field": 1}`},
	}
	for _, req := range post {
		a, aBody := postJSON(t, standalone.URL+req.path, req.body)
		b, bBody := postJSON(t, registry.URL+req.path, req.body)
		if a.StatusCode != b.StatusCode {
			t.Errorf("POST %s %s: status %d vs %d", req.path, req.body, a.StatusCode, b.StatusCode)
			continue
		}
		aNorm, bNorm := string(aBody), string(bBody)
		if req.path == "/v1/match" && a.StatusCode == http.StatusOK {
			aNorm, bNorm = stripTiming(t, aBody), stripTiming(t, bBody)
		}
		if aNorm != bNorm {
			t.Errorf("POST %s %s diverged:\nstandalone: %s\nregistry:   %s", req.path, req.body, aNorm, bNorm)
		}
	}
}

// stripTiming normalizes the per-result wall-clock timing of a v1
// response so two servers answering the same request compare equal.
func stripTiming(t *testing.T, body []byte) string {
	t.Helper()
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	results, _ := raw["results"].([]any)
	for _, r := range results {
		if m, ok := r.(map[string]any); ok {
			delete(m, "timing")
		}
	}
	out, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestRegistryStatsAndSnapshots(t *testing.T) {
	reg := testRegistry(t, Config{CacheSize: 16})
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4", "domain": "movies"}`)
	postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 digital rebel xt"}`) // fan-out

	var st RegistryStats
	getStatsJSON(t, ts.URL+"/statsz", &st)
	if st.DefaultDomain != "movies" || st.DomainCount != 2 {
		t.Fatalf("registry stats header: %+v", st)
	}
	if st.Requests.V1 != 2 || st.Requests.V1Queries != 2 || st.Requests.FanoutQueries != 1 {
		t.Fatalf("registry request counters: %+v", st.Requests)
	}
	if len(st.Domains) != 2 {
		t.Fatalf("domains in stats: %v", st.Domains)
	}
	// movies answered the exact route and one fan-out leg; cameras one
	// fan-out leg.
	if got := st.Domains["movies"].Requests.RoutedQueries; got != 2 {
		t.Fatalf("movies routed_queries = %d, want 2", got)
	}
	if got := st.Domains["cameras"].Requests.RoutedQueries; got != 1 {
		t.Fatalf("cameras routed_queries = %d, want 1", got)
	}
	if st.Domains["movies"].Dataset != "Movies" || st.Domains["cameras"].Dataset != "Cameras" {
		t.Fatalf("per-domain datasets: %+v", st.Domains)
	}

	// /admin/snapshot: all domains, then one.
	var infos map[string]SnapshotInfo
	getStatsJSON(t, ts.URL+"/admin/snapshot", &infos)
	if len(infos) != 2 || infos["movies"].Generation != 1 || infos["cameras"].Generation != 1 {
		t.Fatalf("snapshot infos: %+v", infos)
	}
	var info SnapshotInfo
	getStatsJSON(t, ts.URL+"/admin/snapshot?domain=cameras", &info)
	if info.Dataset != "Cameras" {
		t.Fatalf("single-domain snapshot info: %+v", info)
	}
	resp, err := http.Get(ts.URL + "/admin/snapshot?domain=books")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown domain snapshot info: status %d", resp.StatusCode)
	}
}

func getStatsJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestStandaloneServerRejectsDomainRouting pins the failure mode of
// domain routing against a single-snapshot server: loud 400, not a
// silent answer from the wrong (only) dictionary.
func TestStandaloneServerRejectsDomainRouting(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{}).Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"query": "indy 4", "domain": "movies"}`,
		`{"query": "indy 4", "domains": ["*"]}`,
		`{"queries": [{"query": "indy 4", "domain": "movies"}]}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/match", body)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "multi-domain") {
			t.Errorf("body %s: status %d, %s", body, resp.StatusCode, data)
		}
	}
}
