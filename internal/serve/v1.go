package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"websyn/internal/match"
)

// POST /v1/match — the versioned, unified matching endpoint. One shape
// serves single and batch requests:
//
//	{"query": "indy 4 near san fran", "explain": true}
//	{"queries": [{"query": "indy 4"}, {"query": "madagascar2"}], "top_k": 3}
//
// Top-level tuning fields (top_k, min_sim, mode, explain,
// max_span_tokens) act as defaults for every batch item; an item's own
// non-zero fields win. The response is always the batch shape — a single
// query is a batch of one — and errors are per-item, so one malformed
// query cannot fail a 500-query batch:
//
//	{"count": 2, "results": [{...}, {"error": "match: empty query"}]}
//
// Request-level failures (malformed JSON, unknown fields, oversized
// batch) are JSON error objects with a 4xx status. See docs/API.md for
// the full contract.

// V1Request is the body of POST /v1/match: one match.Request, optionally
// carrying a batch. Unknown fields are rejected.
type V1Request struct {
	match.Request
	// Queries, when non-empty, makes the request a batch; the embedded
	// top-level fields (except Query, which must then be empty) become
	// per-item defaults.
	Queries []match.Request `json:"queries,omitempty"`
}

// V1Response is the body of a successful POST /v1/match.
type V1Response struct {
	Count   int        `json:"count"`
	Results []V1Result `json:"results"`
}

// V1Result is one query's outcome: an engine response, or a per-item
// error (never both).
type V1Result struct {
	*match.Response
	// Cached reports whether the response came from the request cache;
	// a cached response carries the Timing of the request that computed
	// it.
	Cached bool `json:"cached,omitempty"`
	// Error is the per-item failure (empty query, bad mode, ...).
	Error string `json:"error,omitempty"`
}

// v1Error is the JSON error shape for request-level failures.
type v1Error struct {
	Error string `json:"error"`
}

func writeV1Error(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v1Error{Error: fmt.Sprintf(format, args...)}); err != nil {
		log.Printf("serve: encoding error response: %v", err)
	}
}

// inheritDefaults fills an item's zero fields from the batch-level
// request.
func inheritDefaults(item, top match.Request) match.Request {
	if item.TopK == 0 {
		item.TopK = top.TopK
	}
	if item.MinSim == 0 {
		item.MinSim = top.MinSim
	}
	if item.Mode == "" {
		item.Mode = top.Mode
	}
	if item.MaxSpanTokens == 0 {
		item.MaxSpanTokens = top.MaxSpanTokens
	}
	item.Explain = item.Explain || top.Explain
	return item
}

func (s *Server) handleV1Match(w http.ResponseWriter, r *http.Request) {
	var req V1Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeV1Error(w, http.StatusBadRequest, "bad JSON body: %s", err)
		return
	}

	items := req.Queries
	if len(items) == 0 {
		if req.Query == "" {
			writeV1Error(w, http.StatusBadRequest, "set query, or queries for a batch")
			return
		}
		items = []match.Request{req.Request}
	} else {
		if req.Query != "" {
			writeV1Error(w, http.StatusBadRequest, "query and queries are mutually exclusive")
			return
		}
		if len(items) > s.cfg.MaxBatch {
			writeV1Error(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(items), s.cfg.MaxBatch)
			return
		}
		for i := range items {
			items[i] = inheritDefaults(items[i], req.Request)
		}
	}

	s.v1Reqs.Add(1)
	s.v1Queries.Add(uint64(len(items)))
	t0 := time.Now()
	// One generation for the whole batch: a hot swap mid-request cannot
	// answer some items from the old dictionary and some from the new.
	g := s.gen.Load()
	results := make([]V1Result, len(items))
	s.runPool(len(items), func(i int) {
		res, cached, err := s.doGen(g, items[i])
		if err != nil {
			results[i] = V1Result{Error: err.Error()}
			return
		}
		results[i] = V1Result{Response: &res, Cached: cached}
	})
	s.v1Lat.observe(time.Since(t0))
	writeJSON(w, V1Response{Count: len(results), Results: results})
}
