package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"websyn/internal/match"
)

// POST /v1/match — the versioned, unified matching endpoint. One shape
// serves single and batch requests:
//
//	{"query": "indy 4 near san fran", "explain": true}
//	{"queries": [{"query": "indy 4"}, {"query": "madagascar2"}], "top_k": 3}
//
// Top-level tuning fields (top_k, min_sim, mode, explain,
// max_span_tokens) act as defaults for every batch item; an item's own
// non-zero fields win. The response is always the batch shape — a single
// query is a batch of one — and errors are per-item, so one malformed
// query cannot fail a 500-query batch:
//
//	{"count": 2, "results": [{...}, {"error": "match: empty query"}]}
//
// Request-level failures (malformed JSON, unknown fields, oversized
// batch) are JSON error objects with a 4xx status. See docs/API.md for
// the full contract.

// V1Request is the body of POST /v1/match: one match.Request, optionally
// carrying a batch. Unknown fields are rejected.
type V1Request struct {
	match.Request
	// Queries, when non-empty, makes the request a batch; the embedded
	// top-level fields (except Query, which must then be empty) become
	// per-item defaults.
	Queries []match.Request `json:"queries,omitempty"`
	// Domains fans items out across several registered domains and
	// merges the answers into one federated response per item: an
	// explicit list, or ["*"] for every domain. Mutually exclusive with
	// the top-level domain field; an item's own domain field overrides
	// the fan-out with an exact route. Only a multi-domain Registry
	// accepts it — a single-snapshot Server rejects domain routing.
	Domains []string `json:"domains,omitempty"`
}

// V1Response is the body of a successful POST /v1/match.
type V1Response struct {
	Count   int        `json:"count"`
	Results []V1Result `json:"results"`
}

// V1Result is one query's outcome: an engine response, or a per-item
// error (never both).
type V1Result struct {
	*match.Response
	// Cached reports whether the response came from the request cache;
	// a cached response carries the Timing of the request that computed
	// it.
	Cached bool `json:"cached,omitempty"`
	// Error is the per-item failure (empty query, bad mode, ...).
	Error string `json:"error,omitempty"`
}

// v1Error is the JSON error shape for request-level failures.
type v1Error struct {
	Error string `json:"error"`
}

// WriteV1Error writes a request-level /v1/match failure in the JSON
// error shape. Exported for front ends (the fleet router) that must
// speak the exact same error grammar as the serving tier.
func WriteV1Error(w http.ResponseWriter, status int, format string, args ...any) {
	writeV1Error(w, status, format, args...)
}

func writeV1Error(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v1Error{Error: fmt.Sprintf(format, args...)}); err != nil {
		log.Printf("serve: encoding error response: %v", err)
	}
}

// inheritDefaults fills an item's zero fields from the batch-level
// request.
func inheritDefaults(item, top match.Request) match.Request {
	if item.TopK == 0 {
		item.TopK = top.TopK
	}
	if item.MinSim == 0 {
		item.MinSim = top.MinSim
	}
	if item.Mode == "" {
		item.Mode = top.Mode
	}
	if item.MaxSpanTokens == 0 {
		item.MaxSpanTokens = top.MaxSpanTokens
	}
	if item.Domain == "" {
		item.Domain = top.Domain
	}
	item.Explain = item.Explain || top.Explain
	return item
}

// DecodeV1 parses a POST /v1/match body, writing the 4xx itself on
// failure. Shared by the single-domain Server, the domain Registry and
// the fleet router so all three speak the exact same request grammar.
func DecodeV1(w http.ResponseWriter, r *http.Request, limit int64) (V1Request, bool) {
	return decodeV1(w, r, limit)
}

func decodeV1(w http.ResponseWriter, r *http.Request, limit int64) (V1Request, bool) {
	var req V1Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeV1Error(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return V1Request{}, false
		}
		writeV1Error(w, http.StatusBadRequest, "bad JSON body: %s", err)
		return V1Request{}, false
	}
	return req, true
}

// V1Items expands a decoded request into its per-item list, applying
// batch-level defaults. A non-empty message (with its HTTP status)
// reports a request-level failure. Exported for the fleet router, which
// expands a client batch and scatters the items across replicas.
func V1Items(req V1Request, maxBatch int) (items []match.Request, status int, msg string) {
	return v1Items(req, maxBatch)
}

func v1Items(req V1Request, maxBatch int) (items []match.Request, status int, msg string) {
	items = req.Queries
	if len(items) == 0 {
		if req.Query == "" {
			return nil, http.StatusBadRequest, "set query, or queries for a batch"
		}
		items = []match.Request{req.Request}
	} else {
		if req.Query != "" {
			return nil, http.StatusBadRequest, "query and queries are mutually exclusive"
		}
		if len(items) > maxBatch {
			return nil, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch of %d exceeds limit %d", len(items), maxBatch)
		}
		for i := range items {
			items[i] = inheritDefaults(items[i], req.Request)
		}
	}
	return items, 0, ""
}

// doItems answers an expanded item list on the worker pool, the whole
// batch on one generation — a hot swap mid-request cannot answer some
// items from the old dictionary and some from the new. Counting and
// timing belong to the per-version wrappers (doBatch, doBatchV2).
func (s *Server) doItems(items []match.Request) []V1Result {
	g := s.gen.Load()
	results := make([]V1Result, len(items))
	s.runPool(len(items), func(i int) {
		res, cached, err := s.doGen(g, items[i])
		if err != nil {
			results[i] = V1Result{Error: err.Error()}
			return
		}
		results[i] = V1Result{Response: &res, Cached: cached}
	})
	return results
}

// doBatch answers an expanded item list as one v1 request: counted once,
// timed once.
func (s *Server) doBatch(items []match.Request) []V1Result {
	s.v1Reqs.Add(1)
	s.v1Queries.Add(uint64(len(items)))
	t0 := time.Now()
	results := s.doItems(items)
	s.v1Lat.observe(time.Since(t0))
	return results
}

func (s *Server) handleV1Match(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeV1(w, r, s.bodyLimit())
	if !ok {
		return
	}
	items, status, msg := v1Items(req, s.cfg.MaxBatch)
	if msg != "" {
		writeV1Error(w, status, "%s", msg)
		return
	}
	// A single-snapshot server has exactly one dictionary: a request that
	// asks for domain routing expects behavior this deployment cannot
	// provide, so fail loud instead of silently answering from the wrong
	// (only) domain.
	if len(req.Domains) > 0 {
		writeV1Error(w, http.StatusBadRequest, "domains requires a multi-domain server (matchd -snapshot name=path)")
		return
	}
	for _, it := range items {
		if it.Domain != "" {
			writeV1Error(w, http.StatusBadRequest, "domain %q: domain routing requires a multi-domain server (matchd -snapshot name=path)", it.Domain)
			return
		}
	}
	writeJSON(w, V1Response{Count: len(items), Results: s.doBatch(items)})
}
