package serve

import (
	"net/http"
	"time"

	"websyn/internal/match"
)

// POST /v2/match — the attribute-aware successor of /v1/match. The
// request grammar is identical (single query or batch, the same tuning
// fields, the same domain routing); the difference is the response: v2
// runs the structured rewrite stage over the tokens the entity match
// left behind, so each result additionally carries
//
//	"attributes": typed predicates parsed from the remainder
//	              ({column, op, value|text, unit, span, source, ...}),
//	"residual":   the remainder minus the spans the predicates consumed.
//
// "cheap canon 40d lens under $500" thus resolves to the Canon 40D
// entity plus price<=q1 (band "cheap") and price<500 (comparator
// "under 500"), with residual "lens". Every other field is bit-for-bit
// the v1 shape, which is what makes the migration mechanical; see
// docs/API.md#v1v2-migration.
//
// v1 stays frozen: the rewrite stage only runs when the request arrived
// through /v2, so /v1/match responses are byte-identical with or
// without a vocabulary loaded.

// Deprecation metadata stamped on the pre-v1 adapter endpoints (/match,
// /match/batch, /fuzzy). The body bytes are untouched — existing
// clients keep working — but conforming clients see the sunset horizon
// and the successor surface.
const (
	// legacyDeprecation is the RFC 9745 Deprecation header value: the
	// moment the legacy surface was declared deprecated
	// (2026-08-01T00:00:00Z), as a unix timestamp.
	legacyDeprecation = "@1785542400"
	// legacySunset is the RFC 8594 Sunset header value: the earliest
	// date the legacy endpoints may be removed.
	legacySunset = "Tue, 01 Jun 2027 00:00:00 GMT"
	// legacySuccessor points clients at the versioned replacement.
	legacySuccessor = `</v2/match>; rel="successor-version"`
)

// deprecated wraps a legacy handler with the deprecation shim: identical
// response bytes, plus the Deprecation/Sunset/Link header triple.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := w.Header()
		hdr.Set("Deprecation", legacyDeprecation)
		hdr.Set("Sunset", legacySunset)
		hdr.Set("Link", legacySuccessor)
		h(w, r)
	}
}

// markRewrite switches an expanded item list onto the v2 path. Rewrite
// is not a client-settable field (it has no JSON tag), so this is the
// only place a single-server request acquires it: the API version is
// the switch.
func markRewrite(items []match.Request) {
	for i := range items {
		items[i].Rewrite = true
	}
}

// doBatchV2 answers an expanded item list as one v2 request: counted
// and timed on the v2 meters, executed by the same pool as v1.
func (s *Server) doBatchV2(items []match.Request) []V1Result {
	s.v2Reqs.Add(1)
	s.v2Queries.Add(uint64(len(items)))
	t0 := time.Now()
	results := s.doItems(items)
	s.v2Lat.observe(time.Since(t0))
	return results
}

func (s *Server) handleV2Match(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeV1(w, r, s.bodyLimit())
	if !ok {
		return
	}
	items, status, msg := v1Items(req, s.cfg.MaxBatch)
	if msg != "" {
		writeV1Error(w, status, "%s", msg)
		return
	}
	// Same single-dictionary stance as v1: domain routing needs a
	// multi-domain deployment.
	if len(req.Domains) > 0 {
		writeV1Error(w, http.StatusBadRequest, "domains requires a multi-domain server (matchd -snapshot name=path)")
		return
	}
	for _, it := range items {
		if it.Domain != "" {
			writeV1Error(w, http.StatusBadRequest, "domain %q: domain routing requires a multi-domain server (matchd -snapshot name=path)", it.Domain)
			return
		}
	}
	markRewrite(items)
	writeJSON(w, V1Response{Count: len(items), Results: s.doBatchV2(items)})
}

func (reg *Registry) handleV2Match(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeV1(w, r, v1BodyLimit(reg.cfg.MaxBatch))
	if !ok {
		return
	}
	if req.Domain != "" && len(req.Domains) > 0 {
		writeV1Error(w, http.StatusBadRequest, "domain and domains are mutually exclusive")
		return
	}
	items, status, msg := v1Items(req, reg.cfg.MaxBatch)
	if msg != "" {
		writeV1Error(w, status, "%s", msg)
		return
	}
	fan := reg.all()
	explicit := len(req.Domains) > 0
	if explicit {
		var err error
		if fan, err = reg.resolve(req.Domains); err != nil {
			writeV1Error(w, http.StatusBadRequest, "%s", err)
			return
		}
	}
	markRewrite(items)

	reg.v2Reqs.Add(1)
	reg.v2Queries.Add(uint64(len(items)))
	t0 := time.Now()
	results := make([]V1Result, len(items))
	runPool(reg.cfg.BatchWorkers, len(items), func(i int) {
		results[i] = reg.routeItem(fan, items[i], explicit)
	})
	reg.v2Lat.observe(time.Since(t0))
	writeJSON(w, V1Response{Count: len(results), Results: results})
}
