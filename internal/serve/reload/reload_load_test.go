package reload

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"websyn/internal/loadtest"
	"websyn/internal/serve"
)

// TestReloadUnderSustainedLoad is the zero-downtime acceptance test:
// a loadtest workload runs continuously against the server while ten
// snapshot swaps land, alternating snapshot layout versions (v2 -> v1
// -> v2 -> ...) so the crossgrade path is exercised under traffic too.
// Every request must succeed — no transport errors, no non-200s — and
// the generation counters must account for exactly ten swaps.
//
// Run with -race this doubles as the concurrency proof for the
// generation handle: request goroutines read the engine/cache while the
// reloader publishes new generations.
func TestReloadUnderSustainedLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, r := bootServer(t, path, serve.SnapshotVersion)

	mux := http.NewServeMux()
	srv.Mount(mux)
	r.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	snap, err := serve.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := loadtest.FromSnapshot(snap, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		rep *loadtest.Report
		err error
	}
	resc := make(chan result, 1)
	go func() {
		rep, err := loadtest.Run(ctx, w, loadtest.Options{
			URL:         ts.URL,
			QPS:         400,
			Concurrency: 6,
		})
		resc <- result{rep, err}
	}()

	// Let traffic establish, then land ten swaps while it flows.
	time.Sleep(50 * time.Millisecond)
	const swaps = 10
	for i := 1; i <= swaps; i++ {
		version := byte(serve.SnapshotVersion)
		if i%2 == 1 {
			version = 1
		}
		writeSnapshotVersion(t, testSnapshot(fmt.Sprintf("swap %d", i)), path, version)
		swapped, err := r.Reload(false)
		if err != nil || !swapped {
			t.Fatalf("swap %d: swapped %v, err %v", i, swapped, err)
		}
		time.Sleep(20 * time.Millisecond) // traffic on the new generation
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}

	rep := res.rep
	if rep.Requests < 100 {
		t.Fatalf("only %d requests landed; the load never sustained", rep.Requests)
	}
	if rep.Failed() {
		t.Fatalf("requests failed across swaps: %d errors, %d non-200 of %d total",
			rep.Errors, rep.Non200, rep.Requests)
	}

	st := srv.Stats()
	if st.Swaps != swaps {
		t.Fatalf("swap counter %d, want %d", st.Swaps, swaps)
	}
	if st.Generation != swaps+1 {
		t.Fatalf("generation %d, want %d", st.Generation, swaps+1)
	}
	if status := r.Status(); status.Swaps != swaps || status.Failures != 0 {
		t.Fatalf("reloader status: %+v", status)
	}
	// The last swap installed generation 11 from a v2 file.
	if st.SnapshotVersion != serve.SnapshotVersion {
		t.Fatalf("final snapshot version %d, want %d", st.SnapshotVersion, serve.SnapshotVersion)
	}
	t.Logf("served %d requests over %d swaps: p50 %.2fms p95 %.2fms p99 %.2fms",
		rep.Requests, swaps, rep.Latency.P50, rep.Latency.P95, rep.Latency.P99)
}
