package reload

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Group runs one Reloader per registered domain, so every vertical's
// snapshot hot-swaps on its own watcher: movies can install a new
// dictionary generation (or reject a corrupt one) while cameras keeps
// serving untouched. Domains are added at boot, before Run/Mount; the
// set is immutable while serving.
type Group struct {
	names []string // registration order
	by    map[string]*Reloader
}

// NewGroup returns an empty watcher group.
func NewGroup() *Group {
	return &Group{by: make(map[string]*Reloader)}
}

// Add registers a domain's reloader.
func (g *Group) Add(domain string, r *Reloader) error {
	if domain == "" {
		return fmt.Errorf("reload: empty domain name")
	}
	if _, dup := g.by[domain]; dup {
		return fmt.Errorf("reload: domain %q already has a watcher", domain)
	}
	g.by[domain] = r
	g.names = append(g.names, domain)
	return nil
}

// Reloader returns the named domain's reloader.
func (g *Group) Reloader(domain string) (*Reloader, bool) {
	r, ok := g.by[domain]
	return r, ok
}

// Names returns the watched domains in registration order.
func (g *Group) Names() []string { return append([]string(nil), g.names...) }

// Run starts every domain's poll loop and blocks until all of them
// return (each exits on ctx cancellation; watchers with a non-positive
// interval return immediately and stay admin-triggered only).
func (g *Group) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, name := range g.names {
		wg.Add(1)
		go func(r *Reloader) {
			defer wg.Done()
			r.Run(ctx)
		}(g.by[name])
	}
	wg.Wait()
}

// Statuses returns every domain's watcher status, keyed by domain.
func (g *Group) Statuses() map[string]Status {
	out := make(map[string]Status, len(g.names))
	for name, r := range g.by {
		out[name] = r.Status()
	}
	return out
}

// Mount registers the per-domain reload admin surface:
//
//	POST /admin/reload?domain=<name>[&force=1] — reload that domain now;
//	      the domain param may be omitted when exactly one domain is
//	      watched. Unknown domains are 404; a rejected snapshot is 422
//	      with the old generation still serving (see Reloader.Mount).
//	GET  /admin/reload/status                  — every watcher's counters,
//	      keyed by domain (?domain=<name> narrows to one).
func (g *Group) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /admin/reload", func(w http.ResponseWriter, req *http.Request) {
		r, ok := g.byParam(w, req)
		if !ok {
			return
		}
		r.handleReload(w, req)
	})
	mux.HandleFunc("GET /admin/reload/status", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Has("domain") {
			r, ok := g.byParam(w, req)
			if !ok {
				return
			}
			r.handleStatus(w, req)
			return
		}
		writeJSON(w, http.StatusOK, g.Statuses())
	})
}

// byParam resolves the ?domain= param to a reloader, writing the error
// response itself when it cannot. A missing param is accepted only when
// the group watches exactly one domain.
func (g *Group) byParam(w http.ResponseWriter, req *http.Request) (*Reloader, bool) {
	name := req.URL.Query().Get("domain")
	if name == "" {
		if len(g.names) == 1 {
			return g.by[g.names[0]], true
		}
		http.Error(w, fmt.Sprintf("domain param required (watched: %s)", strings.Join(g.names, ", ")),
			http.StatusBadRequest)
		return nil, false
	}
	r, ok := g.by[name]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown domain %q (watched: %s)", name, strings.Join(g.names, ", ")),
			http.StatusNotFound)
		return nil, false
	}
	return r, true
}
