// Package reload hot-swaps a running serve.Server onto a new dictionary
// snapshot without dropping traffic.
//
// The paper's dictionary is not static — new movies, cameras and
// software releases ship weekly, so the mined snapshot evolves
// continuously. A Reloader watches the snapshot file (cheap mtime/size
// poll, SHA-256 to dedupe rewrites of identical bytes), builds the new
// serving generation off the request path, validates it with a canary
// query set, and atomically installs it via the server's generation
// handle. In-flight requests finish on the old dictionary; the request
// cache is flushed per generation as a side effect of the swap.
//
// A reload can also be forced at any time with POST /admin/reload (see
// Mount), which is how deployment pipelines and the reload-under-load
// tests drive deterministic swaps.
//
// Failure policy: a snapshot that cannot be read (truncated, bad CRC,
// unknown version) or that fails canary validation is rejected and the
// old generation keeps serving; the failure is counted and surfaced on
// GET /admin/reload/status.
package reload

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/match"
	"websyn/internal/serve"
)

// Config tunes a Reloader.
type Config struct {
	// Path is the snapshot file to watch and load. Required.
	Path string
	// Interval is the poll period for file changes. <= 0 disables
	// polling — reloads then happen only via Reload / POST /admin/reload.
	Interval time.Duration
	// Canary holds extra validation queries. Each must produce at least
	// one match on the candidate engine, or the swap is rejected. The
	// built-in canary — a deterministic sample of the new snapshot's own
	// canonical strings, each required to resolve to its own entity —
	// always runs; Canary adds domain-specific probes on top.
	Canary []string
	// CanarySample is how many canonical strings the built-in canary
	// samples from the candidate snapshot. 0 means 5; negative disables
	// the built-in sample (explicit Canary queries still run).
	CanarySample int
	// BootSHA is the hex SHA-256 of the snapshot the server booted on,
	// when the caller already computed it (matchd hashes the file while
	// loading). Set, it saves New a second full read of Path.
	BootSHA string
	// Mmap loads reloaded snapshots with serve.OpenSnapshotMapped, so a
	// new generation's fuzzy index aliases the file's pages instead of
	// being decoded onto the heap. Should match how the server booted.
	Mmap bool
	// Logf receives operational log lines. nil means log.Printf.
	Logf func(format string, args ...any)
}

// statRehashEvery is how many consecutive stat-identical polls may be
// skipped before one re-reads and re-hashes the file anyway. At the
// default it bounds the staleness window of an mtime/size-preserving
// publish to ~10 poll intervals instead of forever.
const statRehashEvery = 10

// Status is the JSON shape of GET /admin/reload/status.
type Status struct {
	Path     string `json:"path"`
	Interval string `json:"interval,omitempty"`
	// Checks counts change probes (polls + explicit reload requests);
	// Swaps successful installs; Failures rejected reloads.
	Checks   uint64 `json:"checks"`
	Swaps    uint64 `json:"swaps"`
	Failures uint64 `json:"failures"`
	// LastError is the most recent rejection, cleared by the next
	// successful swap.
	LastError string `json:"last_error,omitempty"`
	// LastCheck and LastSwap are nil until the first check/swap happens
	// (a non-pointer time.Time would serialize as year 1 under
	// omitempty, which never omits structs).
	LastCheck *time.Time `json:"last_check,omitempty"`
	LastSwap  *time.Time `json:"last_swap,omitempty"`
}

// Reloader drives snapshot hot-swaps for one server. All methods are
// safe for concurrent use; reloads themselves are serialized.
type Reloader struct {
	srv *serve.Server
	cfg Config

	mu sync.Mutex // serializes reload attempts and guards the memo below
	// Identity of the last file examined, to skip no-op reloads: the
	// stat pair is the cheap first-level check, the SHA the second.
	lastMod  time.Time
	lastSize int64
	lastSHA  string
	// SHA of the last *rejected* file, so a bad snapshot costs one
	// parse/build/canary attempt, not one per poll tick: until the
	// bytes change (or force), polling it again is a cheap skip.
	rejectedSHA string
	// statSkips counts consecutive checks answered by the stat fast
	// path; every statRehashEvery-th one re-hashes anyway, bounding how
	// long a publish that preserved mtime and size can stay invisible.
	statSkips int

	checks    atomic.Uint64
	swaps     atomic.Uint64
	failures  atomic.Uint64
	lastErr   atomic.Pointer[string]
	lastCheck atomic.Pointer[time.Time]
	lastSwap  atomic.Pointer[time.Time]
}

// New builds a Reloader for srv. It does not load anything: the server
// is expected to have booted on cfg.Path already. When neither
// cfg.BootSHA nor the server's generation meta carries the booted
// content's hash, the first check reinstalls the file once (safe, just
// redundant) and settles the memo.
func New(srv *serve.Server, cfg Config) (*Reloader, error) {
	if cfg.Path == "" {
		return nil, errors.New("reload: Config.Path is required")
	}
	if cfg.CanarySample == 0 {
		cfg.CanarySample = 5
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	r := &Reloader{srv: srv, cfg: cfg}
	// Memoize the *installed* content's hash so the first poll doesn't
	// pointlessly rebuild the generation the server already runs. Only a
	// hash of what actually booted is trustworthy — stat-and-hashing the
	// file now would pair the memo with whatever was renamed into place
	// since the boot read, masking that snapshot forever. The server's
	// own generation meta (NewServerWithMeta / a prior Install) is such
	// a hash; cfg.BootSHA overrides it. When neither is known the memo
	// stays empty and the first check installs once redundantly — a
	// wasted build is safe, a masked update is not. No stat memo either
	// way: the first check settles it against the hash it computes.
	r.lastSHA = cfg.BootSHA
	if r.lastSHA == "" {
		r.lastSHA = srv.SnapshotInfo().Snapshot.SHA256
	}
	// A canary that matches nothing on the dictionary serving right now
	// would reject every future snapshot, silently freezing updates —
	// almost certainly a typo. Fail construction instead.
	for _, q := range cfg.Canary {
		res, err := srv.Engine().Match(match.Request{Query: q})
		if err != nil {
			return nil, fmt.Errorf("reload: canary %q: %w", q, err)
		}
		if len(res.Matches) == 0 {
			return nil, fmt.Errorf("reload: canary %q matches nothing on the current dictionary (typo? it would block every reload)", q)
		}
	}
	return r, nil
}

// Path returns the snapshot file the reloader watches and loads from —
// the local spool path a fleet snapshot puller must write fetched
// snapshots to before triggering Reload.
func (r *Reloader) Path() string { return r.cfg.Path }

// Run polls cfg.Path every cfg.Interval until ctx is cancelled. With a
// non-positive interval it returns immediately. Run never touches the
// HTTP listener: cancelling it (e.g. when shutdown begins draining)
// simply stops future swaps, and a swap that races the drain only
// replaces in-memory state.
func (r *Reloader) Run(ctx context.Context) {
	if r.cfg.Interval <= 0 {
		return
	}
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if swapped, err := r.Reload(false); err != nil {
				r.cfg.Logf("reload: %s rejected: %v", r.cfg.Path, err)
			} else if swapped {
				info := r.srv.SnapshotInfo()
				r.cfg.Logf("reload: installed %s (sha256 %.12s, snapshot v%d) as generation %d in %.1fms",
					r.cfg.Path, info.Snapshot.SHA256, info.Snapshot.Version, info.Generation, info.BuildMillis)
			}
		}
	}
}

// Reload checks the watched snapshot and swaps it in when it changed.
// force skips the change check and reinstalls even identical bytes.
// It reports whether a swap happened; on error the old generation keeps
// serving.
func (r *Reloader) Reload(force bool) (swapped bool, err error) {
	return r.reload(force, force)
}

// reload implements Reload. skipStat drops the mtime/size fast path and
// always hashes the file: the poller keeps the cheap stat check (one
// stat per tick), but an explicit POST /admin/reload must not be fooled
// by a publish that preserved both timestamp and size (coarse-mtime
// filesystems, timestamp-preserving copy tools) — content is what
// decides.
func (r *Reloader) reload(force, skipStat bool) (swapped bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks.Add(1)
	now := time.Now()
	r.lastCheck.Store(&now)

	st, err := os.Stat(r.cfg.Path)
	if err != nil {
		return false, r.fail(fmt.Errorf("stat snapshot: %w", err))
	}
	if !force && !skipStat && st.ModTime().Equal(r.lastMod) && st.Size() == r.lastSize {
		// A publish can preserve both mtime and size (coarse-timestamp
		// filesystems, `cp -p`-style tools), so don't trust the stat
		// pair forever: fall through to a content hash periodically.
		if r.statSkips++; r.statSkips < statRehashEvery {
			return false, nil
		}
	}
	r.statSkips = 0
	// Hash by streaming — never the whole file in memory: during a swap
	// the process already holds the old and the new generation.
	sha, err := hashFile(r.cfg.Path)
	if err != nil {
		return false, r.fail(fmt.Errorf("read snapshot: %w", err))
	}
	if !force && sha == r.lastSHA {
		// Rewritten with identical bytes (e.g. a no-op re-publish):
		// refresh the stat memo, keep the current generation.
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
		return false, nil
	}
	if !force && sha == r.rejectedSHA {
		// The same bad bytes we already rejected: skip the re-parse and
		// rebuild (the original rejection stays on LastError) until the
		// file changes or the caller forces.
		r.lastMod, r.lastSize = st.ModTime(), st.Size()
		return false, nil
	}

	reject := func(err error) (bool, error) {
		// Remember the bad file's identity so steady-state failure costs
		// one stat per poll, not a full rebuild.
		r.lastMod, r.lastSize, r.rejectedSHA = st.ModTime(), st.Size(), sha
		return false, r.fail(err)
	}
	// Second pass parses (streaming again, or via the mapping) and
	// re-hashes; a mismatch means the file was replaced mid-reload —
	// reject, and the next check sees the new bytes as a fresh change.
	readHashed := serve.ReadSnapshotFileHashed
	if r.cfg.Mmap {
		readHashed = serve.OpenSnapshotMappedHashed
	}
	snap, parsedSHA, err := readHashed(r.cfg.Path)
	if err != nil {
		return reject(err)
	}
	if parsedSHA != sha {
		return reject(fmt.Errorf("snapshot changed while reloading (sha %.12s -> %.12s)", sha, parsedSHA))
	}
	gen, err := r.srv.Prepare(snap, serve.SnapshotMeta{Path: r.cfg.Path, SHA256: sha})
	if err != nil {
		return reject(err)
	}
	if err := r.canary(gen); err != nil {
		return reject(fmt.Errorf("canary validation: %w", err))
	}

	r.srv.Install(gen)
	r.lastMod, r.lastSize, r.lastSHA, r.rejectedSHA = st.ModTime(), st.Size(), sha, ""
	r.swaps.Add(1)
	swapTime := time.Now()
	r.lastSwap.Store(&swapTime)
	r.lastErr.Store(nil)
	return true, nil
}

// fail records a rejected reload and passes the error through.
func (r *Reloader) fail(err error) error {
	r.failures.Add(1)
	msg := err.Error()
	r.lastErr.Store(&msg)
	return err
}

// canary validates a candidate generation before it may serve: a
// deterministic sample of its own canonical strings must each resolve
// back to their entity, and every configured canary query must produce
// at least one match. This catches the failure class a checksum cannot
// — a snapshot that parses but was mined against the wrong catalog,
// stripped of its dictionary, or built with a broken index.
func (r *Reloader) canary(gen *serve.Generation) error {
	eng := gen.Engine()
	canonicals := gen.Canonicals()
	if n := r.cfg.CanarySample; n > 0 && len(canonicals) > 0 {
		stride := len(canonicals) / n
		if stride < 1 {
			stride = 1
		}
		for id := 0; id < len(canonicals); id += stride {
			if err := expectEntity(eng, canonicals[id], id); err != nil {
				return err
			}
		}
	}
	for _, q := range r.cfg.Canary {
		res, err := eng.Match(match.Request{Query: q})
		if err != nil {
			return fmt.Errorf("query %q: %w", q, err)
		}
		if len(res.Matches) == 0 {
			return fmt.Errorf("query %q matched nothing", q)
		}
	}
	return nil
}

// expectEntity requires the engine to resolve a canonical string back to
// its entity, as the top match or an alternate (ambiguous canonicals —
// "Madagascar" vs the franchise — may rank another entity first).
func expectEntity(eng *match.Engine, canonical string, id int) error {
	res, err := eng.Match(match.Request{Query: canonical})
	if err != nil {
		return fmt.Errorf("canonical %q: %w", canonical, err)
	}
	for _, m := range res.Matches {
		if m.EntityID == id {
			return nil
		}
		for _, alt := range m.Alternates {
			if alt.EntityID == id {
				return nil
			}
		}
	}
	return fmt.Errorf("canonical %q did not resolve to entity %d", canonical, id)
}

// Status returns a point-in-time view of the reloader's counters.
func (r *Reloader) Status() Status {
	s := Status{
		Path:     r.cfg.Path,
		Checks:   r.checks.Load(),
		Swaps:    r.swaps.Load(),
		Failures: r.failures.Load(),
	}
	if r.cfg.Interval > 0 {
		s.Interval = r.cfg.Interval.String()
	}
	if msg := r.lastErr.Load(); msg != nil {
		s.LastError = *msg
	}
	s.LastCheck = r.lastCheck.Load()
	s.LastSwap = r.lastSwap.Load()
	return s
}

// reloadResult is the JSON shape of POST /admin/reload.
type reloadResult struct {
	Swapped bool `json:"swapped"`
	// Generation and Snapshot describe the live state after the call
	// (the new generation on a swap, the kept one otherwise).
	Generation uint64             `json:"generation"`
	Snapshot   serve.SnapshotMeta `json:"snapshot"`
	Error      string             `json:"error,omitempty"`
}

// Mount registers the reload admin surface on mux:
//
//	POST /admin/reload          — reload now ("?force=1" reinstalls even
//	                              unchanged bytes); 200 with {"swapped":
//	                              true|false} on success, 422 with the
//	                              rejection when the new snapshot is
//	                              unusable (the old one keeps serving)
//	GET  /admin/reload/status   — watcher counters and last error
func (r *Reloader) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /admin/reload", r.handleReload)
	mux.HandleFunc("GET /admin/reload/status", r.handleStatus)
}

func (r *Reloader) handleReload(w http.ResponseWriter, req *http.Request) {
	force := req.URL.Query().Get("force") == "1"
	swapped, err := r.reload(force, true)
	info := r.srv.SnapshotInfo()
	out := reloadResult{Swapped: swapped, Generation: info.Generation, Snapshot: info.Snapshot}
	if err != nil {
		out.Error = err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Reloader) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Status())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("reload: encoding response: %v", err)
	}
}

// shaHex is the hex SHA-256 of b.
func shaHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// hashFile streams the file through SHA-256 without buffering it.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
