package reload

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"websyn/internal/loadtest"
	"websyn/internal/match"
	"websyn/internal/serve"
)

// testCameraSnapshot is the second vertical for multi-domain reload
// tests; tag works like testSnapshot's.
func testCameraSnapshot(tag string) *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Canon EOS 350D", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("digital rebel xt", match.Entry{EntityID: 0, Score: 0.9, Source: "mined"})
	d.Add("Nikon D80", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	if tag != "" {
		d.Add(tag, match.Entry{EntityID: 0, Score: 0.5, Source: "mined"})
	}
	return &serve.Snapshot{
		Dataset:    "Cameras",
		MinSim:     0.55,
		Canonicals: []string{"Canon EOS 350D", "Nikon D80"},
		Synonyms:   map[string][]string{},
		Dict:       d,
		Fuzzy:      d.NewFuzzyIndex(0.55).Packed(),
	}
}

// bootDomain writes a snapshot, registers it with the registry, and
// wires its reloader into the group — the per-domain slice of what
// matchd's multi-domain boot does.
func bootDomain(t *testing.T, reg *serve.Registry, group *Group, name, path string, snap *serve.Snapshot) *Reloader {
	t.Helper()
	writeSnapshotVersion(t, snap, path, serve.SnapshotVersion)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := serve.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := reg.Add(name, loaded, serve.SnapshotMeta{Path: path, SHA256: shaHex(data)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(srv, Config{Path: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := group.Add(name, r); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestGroupAdminSurface pins the per-domain admin routing: reloads and
// status are domain-addressed, unknown domains 404, and a missing
// domain param is only acceptable when one domain is watched.
func TestGroupAdminSurface(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry(serve.Config{CacheSize: 16})
	group := NewGroup()
	moviesPath := filepath.Join(dir, "movies.snap")
	camerasPath := filepath.Join(dir, "cameras.snap")
	bootDomain(t, reg, group, "movies", moviesPath, testSnapshot(""))
	bootDomain(t, reg, group, "cameras", camerasPath, testCameraSnapshot(""))

	mux := http.NewServeMux()
	reg.Mount(mux)
	group.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Domain param required with two domains watched.
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload without domain: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/reload?domain=books", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload unknown domain: status %d", resp.StatusCode)
	}

	// A movies publish swaps movies and only movies.
	writeSnapshotVersion(t, testSnapshot("movies gen two"), moviesPath, serve.SnapshotVersion)
	resp, err = http.Post(ts.URL+"/admin/reload?domain=movies", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("movies reload: status %d", resp.StatusCode)
	}
	moviesSrv, _ := reg.Domain("movies")
	camerasSrv, _ := reg.Domain("cameras")
	if gen, _ := moviesSrv.Generation(); gen != 2 {
		t.Fatalf("movies generation %d, want 2", gen)
	}
	if gen, _ := camerasSrv.Generation(); gen != 1 {
		t.Fatalf("cameras generation %d, want 1 (movies swap leaked)", gen)
	}
	mustMatch(t, moviesSrv, "movies gen two", 0)

	// Status: all domains keyed by name, one domain with the param.
	var statuses map[string]Status
	getJSON(t, ts.URL+"/admin/reload/status", &statuses)
	if len(statuses) != 2 || statuses["movies"].Swaps != 1 || statuses["cameras"].Swaps != 0 {
		t.Fatalf("statuses: %+v", statuses)
	}
	var st Status
	getJSON(t, ts.URL+"/admin/reload/status?domain=movies", &st)
	if st.Swaps != 1 || st.Path != moviesPath {
		t.Fatalf("movies status: %+v", st)
	}

	// A single-domain group accepts a param-less reload.
	soloReg := serve.NewRegistry(serve.Config{})
	soloGroup := NewGroup()
	soloPath := filepath.Join(dir, "solo.snap")
	bootDomain(t, soloReg, soloGroup, "solo", soloPath, testSnapshot(""))
	soloMux := http.NewServeMux()
	soloReg.Mount(soloMux)
	soloGroup.Mount(soloMux)
	soloTS := httptest.NewServer(soloMux)
	defer soloTS.Close()
	resp, err = http.Post(soloTS.URL+"/admin/reload?force=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solo reload without domain: status %d", resp.StatusCode)
	}
}

// TestGroupRunPollsAllDomains runs every watcher on its own interval
// and drops a new snapshot under each: both must be picked up
// independently.
func TestGroupRunPollsAllDomains(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry(serve.Config{})
	group := NewGroup()
	moviesPath := filepath.Join(dir, "movies.snap")
	camerasPath := filepath.Join(dir, "cameras.snap")

	// Build reloaders with polling enabled (bootDomain's are poll-less).
	writeSnapshotVersion(t, testSnapshot(""), moviesPath, serve.SnapshotVersion)
	writeSnapshotVersion(t, testCameraSnapshot(""), camerasPath, serve.SnapshotVersion)
	for _, d := range []struct {
		name, path string
	}{{"movies", moviesPath}, {"cameras", camerasPath}} {
		data, err := os.ReadFile(d.path)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := serve.ReadSnapshotFile(d.path)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := reg.Add(d.name, snap, serve.SnapshotMeta{Path: d.path, SHA256: shaHex(data)})
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(srv, Config{Path: d.path, Interval: 5 * time.Millisecond, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := group.Add(d.name, r); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); group.Run(ctx) }()

	writeSnapshotVersion(t, testSnapshot("movies polled"), moviesPath, serve.SnapshotVersion)
	writeSnapshotVersion(t, testCameraSnapshot("cameras polled"), camerasPath, serve.SnapshotVersion)

	moviesSrv, _ := reg.Domain("movies")
	camerasSrv, _ := reg.Domain("cameras")
	deadline := time.Now().Add(5 * time.Second)
	for {
		mg, _ := moviesSrv.Generation()
		cg, _ := camerasSrv.Generation()
		if mg == 2 && cg == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pollers never installed both snapshots: movies gen %d, cameras gen %d", mg, cg)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mustMatch(t, moviesSrv, "movies polled", 0)
	mustMatch(t, camerasSrv, "cameras polled", 0)
	cancel()
	<-done
}

// TestMultiDomainReloadUnderLoad is the multi-domain zero-downtime
// acceptance test: sustained mixed-domain traffic (exact routes at both
// domains plus federated fan-outs) flows while one domain hot-swaps
// five times; every request on every domain must succeed, and the
// untouched domain must still be on its boot generation afterwards.
// With -race this is the concurrency proof for per-domain generation
// handles under the registry's fan-out path.
func TestMultiDomainReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry(serve.Config{CacheSize: 64})
	group := NewGroup()
	moviesPath := filepath.Join(dir, "movies.snap")
	camerasPath := filepath.Join(dir, "cameras.snap")
	moviesReloader := bootDomain(t, reg, group, "movies", moviesPath, testSnapshot(""))
	bootDomain(t, reg, group, "cameras", camerasPath, testCameraSnapshot(""))

	mux := http.NewServeMux()
	reg.Mount(mux)
	group.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	moviesSnap, err := serve.ReadSnapshotFile(moviesPath)
	if err != nil {
		t.Fatal(err)
	}
	camerasSnap, err := serve.ReadSnapshotFile(camerasPath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := loadtest.FromSnapshots(map[string]*serve.Snapshot{
		"movies":  moviesSnap,
		"cameras": camerasSnap,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		rep *loadtest.Report
		err error
	}
	resc := make(chan result, 1)
	go func() {
		rep, err := loadtest.Run(ctx, w, loadtest.Options{
			URL:         ts.URL,
			QPS:         400,
			Concurrency: 6,
		})
		resc <- result{rep, err}
	}()

	// Let traffic establish, then land five movies swaps while cameras
	// serves untouched.
	time.Sleep(50 * time.Millisecond)
	const swaps = 5
	for i := 1; i <= swaps; i++ {
		writeSnapshotVersion(t, testSnapshot(fmt.Sprintf("movies swap %d", i)), moviesPath, serve.SnapshotVersion)
		swapped, err := moviesReloader.Reload(false)
		if err != nil || !swapped {
			t.Fatalf("movies swap %d: swapped %v, err %v", i, swapped, err)
		}
		time.Sleep(50 * time.Millisecond) // traffic on the new generation
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}

	rep := res.rep
	if rep.Requests < 100 {
		t.Fatalf("only %d requests landed; the load never sustained", rep.Requests)
	}
	if rep.Failed() {
		t.Fatalf("requests failed across swaps: %d errors, %d non-200 of %d total",
			rep.Errors, rep.Non200, rep.Requests)
	}
	// Mixed-domain traffic really exercised both verticals and the
	// federated path.
	for _, d := range []string{"movies", "cameras", loadtest.FederatedDomain} {
		if rep.ByDomain[d] == 0 {
			t.Fatalf("no %q traffic in the mixed workload: %+v", d, rep.ByDomain)
		}
	}

	moviesSrv, _ := reg.Domain("movies")
	camerasSrv, _ := reg.Domain("cameras")
	if gen, sw := moviesSrv.Generation(); gen != swaps+1 || sw != swaps {
		t.Fatalf("movies generation %d swaps %d, want %d, %d", gen, sw, swaps+1, swaps)
	}
	if gen, sw := camerasSrv.Generation(); gen != 1 || sw != 0 {
		t.Fatalf("cameras generation %d swaps %d — movies swaps leaked across domains", gen, sw)
	}
	mustMatch(t, moviesSrv, fmt.Sprintf("movies swap %d", swaps), 0)
	if statuses := group.Statuses(); statuses["movies"].Swaps != swaps || statuses["cameras"].Swaps != 0 {
		t.Fatalf("group statuses: %+v", statuses)
	}
	t.Logf("served %d requests (%v by domain) over %d movies swaps: p50 %.2fms p99 %.2fms",
		rep.Requests, rep.ByDomain, swaps, rep.Latency.P50, rep.Latency.P99)
}
