package reload

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"websyn/internal/match"
	"websyn/internal/serve"
)

// testSnapshot builds a small movies snapshot; tag lands in an extra
// mined entry so variants differ byte-wise (and are distinguishable
// through the serving API).
func testSnapshot(tag string) *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Indiana Jones and the Kingdom of the Crystal Skull",
		match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("indy 4", match.Entry{EntityID: 0, Score: 0.8, Source: "mined"})
	d.Add("Madagascar: Escape 2 Africa", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("madagascar 2", match.Entry{EntityID: 1, Score: 0.9, Source: "mined"})
	if tag != "" {
		d.Add(tag, match.Entry{EntityID: 0, Score: 0.5, Source: "mined"})
	}
	return &serve.Snapshot{
		Dataset: "Movies",
		MinSim:  0.55,
		Canonicals: []string{
			"Indiana Jones and the Kingdom of the Crystal Skull",
			"Madagascar: Escape 2 Africa",
		},
		Synonyms: map[string][]string{},
		Dict:     d,
		Fuzzy:    d.NewFuzzyIndex(0.55).Packed(),
	}
}

// mtimeSeq hands every test write a strictly increasing mtime, so the
// watcher's stat fast path sees each publish even on filesystems with
// coarse timestamp granularity (tests land writes milliseconds apart).
var mtimeSeq atomic.Int64

// writeSnapshotVersion serializes snap at the given layout version via
// the atomic temp-file + rename path WriteFile uses.
func writeSnapshotVersion(t *testing.T, snap *serve.Snapshot, path string, version byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := snap.WriteToVersion(&buf, version); err != nil {
		t.Fatal(err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	mt := time.Now().Add(time.Duration(mtimeSeq.Add(1)) * time.Second)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
}

// bootServer writes the snapshot to path at the given version and boots
// a server plus reloader on it, the way matchd does: the boot
// provenance (path + content hash) rides on the first generation, and
// the reloader picks its memo up from there.
func bootServer(t *testing.T, path string, version byte) (*serve.Server, *Reloader) {
	t.Helper()
	writeSnapshotVersion(t, testSnapshot(""), path, version)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerWithMeta(snap, serve.Config{CacheSize: 64},
		serve.SnapshotMeta{Path: path, SHA256: shaHex(data)})
	r, err := New(srv, Config{Path: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return srv, r
}

func mustMatch(t *testing.T, srv *serve.Server, query string, entity int) {
	t.Helper()
	res, err := srv.Do(match.Request{Query: query})
	if err != nil {
		t.Fatalf("Do(%q): %v", query, err)
	}
	if len(res.Matches) == 0 || res.Matches[0].EntityID != entity {
		t.Fatalf("Do(%q) = %+v, want entity %d", query, res.Matches, entity)
	}
}

// TestCrossgradeReloads swaps a live server v2 -> v1 -> v2: both
// directions must install cleanly, with the version visible on
// /admin/snapshot and queries served throughout.
func TestCrossgradeReloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, r := bootServer(t, path, serve.SnapshotVersion)

	mux := http.NewServeMux()
	srv.Mount(mux)
	r.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if gen, swaps := srv.Generation(); gen != 1 || swaps != 0 {
		t.Fatalf("boot generation %d swaps %d, want 1, 0", gen, swaps)
	}
	mustMatch(t, srv, "indy 4 tickets", 0)

	// Downgrade: a version 1 file (no fuzzy section) replaces the v2
	// snapshot on a live server.
	writeSnapshotVersion(t, testSnapshot("gen two"), path, 1)
	if swapped, err := r.Reload(false); err != nil || !swapped {
		t.Fatalf("v2 -> v1 reload: swapped %v, err %v", swapped, err)
	}
	if st := srv.Stats(); st.Generation != 2 || st.Swaps != 1 || st.SnapshotVersion != 1 {
		t.Fatalf("after v1 install: generation %d swaps %d version %d",
			st.Generation, st.Swaps, st.SnapshotVersion)
	}
	mustMatch(t, srv, "gen two", 0) // the new dictionary is live
	mustMatch(t, srv, "madagascar 2 dvd", 1)

	// Upgrade back to v2 via the admin endpoint.
	writeSnapshotVersion(t, testSnapshot("gen three"), path, serve.SnapshotVersion)
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/reload: status %d", resp.StatusCode)
	}
	var rr struct {
		Swapped    bool               `json:"swapped"`
		Generation uint64             `json:"generation"`
		Snapshot   serve.SnapshotMeta `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.Generation != 3 || rr.Snapshot.Version != serve.SnapshotVersion {
		t.Fatalf("reload response %+v", rr)
	}
	if rr.Snapshot.SHA256 == "" || rr.Snapshot.Path != path {
		t.Fatalf("snapshot provenance %+v", rr.Snapshot)
	}
	mustMatch(t, srv, "gen three", 0)

	// /admin/snapshot agrees.
	var info serve.SnapshotInfo
	getJSON(t, ts.URL+"/admin/snapshot", &info)
	if info.Generation != 3 || info.Swaps != 2 || info.Snapshot.Version != serve.SnapshotVersion {
		t.Fatalf("/admin/snapshot: %+v", info)
	}
}

// TestCorruptSnapshotRejected flips bytes in the watched file: the
// reload must fail, keep the old generation serving, and surface the
// error on the status endpoint.
func TestCorruptSnapshotRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, r := bootServer(t, path, serve.SnapshotVersion)

	mux := http.NewServeMux()
	srv.Mount(mux)
	r.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range [][]byte{
		data[:len(data)/2],           // truncated
		append([]byte("JUNK"), 7, 7), // bad magic
		flipByte(data, len(data)/2),  // bit rot mid-file (CRC catches it)
		flipByte(data, len(data)-2),  // corrupted checksum itself
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		swapped, err := r.Reload(false)
		if err == nil || swapped {
			t.Fatalf("corrupt snapshot accepted: swapped %v, err %v", swapped, err)
		}
		if gen, _ := srv.Generation(); gen != 1 {
			t.Fatalf("generation advanced to %d on corrupt input", gen)
		}
		mustMatch(t, srv, "indy 4", 0) // old engine still serving
	}

	// Re-polling the same bad bytes is a cheap no-op: the rejection is
	// memoized (one parse/build attempt per bad file, not per tick) and
	// stays visible on LastError until a different file lands.
	failuresBefore := r.Status().Failures
	if swapped, err := r.Reload(false); err != nil || swapped {
		t.Fatalf("re-poll of rejected bytes: swapped %v, err %v", swapped, err)
	}
	if st := r.Status(); st.Failures != failuresBefore || st.LastError == "" {
		t.Fatalf("re-poll of rejected bytes changed status: %+v (failures were %d)", st, failuresBefore)
	}

	// The HTTP surface: 422 with the error, old generation reported.
	resp, err := http.Post(ts.URL+"/admin/reload?force=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("POST /admin/reload on corrupt file: status %d", resp.StatusCode)
	}
	var st Status
	getJSON(t, ts.URL+"/admin/reload/status", &st)
	if st.Failures < 4 || st.LastError == "" || st.Swaps != 0 {
		t.Fatalf("status after corrupt reloads: %+v", st)
	}

	// A good snapshot recovers, and the recorded error clears.
	writeSnapshotVersion(t, testSnapshot("recovered"), path, serve.SnapshotVersion)
	if swapped, err := r.Reload(false); err != nil || !swapped {
		t.Fatalf("recovery reload: swapped %v, err %v", swapped, err)
	}
	if st := r.Status(); st.LastError != "" || st.Swaps != 1 {
		t.Fatalf("status after recovery: %+v", st)
	}
	mustMatch(t, srv, "recovered", 0)
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}

// TestCanaryRejectsBrokenSnapshot feeds a well-formed snapshot whose
// entity table does not resolve against its own dictionary: the CRC is
// fine, so only canary validation can catch it.
func TestCanaryRejectsBrokenSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, r := bootServer(t, path, serve.SnapshotVersion)

	bad := testSnapshot("broken")
	bad.Canonicals = append(bad.Canonicals, "Some Movie Missing From The Dictionary")
	writeSnapshotVersion(t, bad, path, serve.SnapshotVersion)

	swapped, err := r.Reload(false)
	if err == nil || swapped {
		t.Fatalf("canary accepted a broken snapshot: swapped %v, err %v", swapped, err)
	}
	if !strings.Contains(err.Error(), "canary") {
		t.Fatalf("error %v, want canary rejection", err)
	}
	if gen, _ := srv.Generation(); gen != 1 {
		t.Fatalf("generation advanced to %d past a failed canary", gen)
	}

	// A canary that cannot match even the current dictionary is almost
	// certainly a typo: construction must fail fast rather than freeze
	// all future reloads.
	if _, err := New(srv, Config{Path: path, Canary: []string{"query that matches nothing"}, Logf: t.Logf}); err == nil {
		t.Fatal("New accepted a canary that matches nothing")
	}

	// A canary valid on the boot dictionary still gates candidates that
	// lost the entity it probes for.
	r2, err := New(srv, Config{Path: path, Canary: []string{"indy 4"}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// The candidate is internally consistent (its own canonicals
	// self-resolve, so the built-in canary passes) but has lost the
	// entity the explicit canary probes for.
	d := match.NewDictionary()
	d.Add("Madagascar: Escape 2 Africa", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	noIndy := &serve.Snapshot{
		Dataset:    "Movies",
		MinSim:     0.55,
		Canonicals: []string{"Madagascar: Escape 2 Africa"},
		Synonyms:   map[string][]string{},
		Dict:       d,
		Fuzzy:      d.NewFuzzyIndex(0.55).Packed(),
	}
	writeSnapshotVersion(t, noIndy, path, serve.SnapshotVersion)
	if swapped, err := r2.Reload(false); err == nil || swapped {
		t.Fatalf("explicit canary accepted a snapshot missing its entity: swapped %v, err %v", swapped, err)
	}
	mustMatch(t, srv, "indy 4", 0) // old dictionary still live
}

// TestUnchangedFileSkipsSwap pins the change detection: same stat ->
// no-op; rewritten identical bytes -> no-op; force -> reinstall.
func TestUnchangedFileSkipsSwap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, r := bootServer(t, path, serve.SnapshotVersion)

	if swapped, err := r.Reload(false); err != nil || swapped {
		t.Fatalf("unchanged file: swapped %v, err %v", swapped, err)
	}

	// Same bytes, fresh mtime: the SHA memo must suppress the rebuild.
	writeSnapshotVersion(t, testSnapshot(""), path, serve.SnapshotVersion)
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if swapped, err := r.Reload(false); err != nil || swapped {
		t.Fatalf("identical bytes: swapped %v, err %v", swapped, err)
	}

	if swapped, err := r.Reload(true); err != nil || !swapped {
		t.Fatalf("forced reload: swapped %v, err %v", swapped, err)
	}
	if gen, swaps := srv.Generation(); gen != 2 || swaps != 1 {
		t.Fatalf("after force: generation %d swaps %d", gen, swaps)
	}
}

// TestBootSHAMemo pins the BootSHA contract: bytes matching the boot
// hash are skipped without a rebuild, while a snapshot that replaced
// the file between the boot read and New (the caller's hash is stale)
// is still detected and installed on the first check.
func TestBootSHAMemo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	writeSnapshotVersion(t, testSnapshot(""), path, serve.SnapshotVersion)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bootSHA := shaHex(data)
	snap, err := serve.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged file: the memoized hash suppresses the rebuild.
	srv := serve.NewServer(snap, serve.Config{})
	r, err := New(srv, Config{Path: path, BootSHA: bootSHA, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if swapped, err := r.Reload(false); err != nil || swapped {
		t.Fatalf("boot bytes re-installed: swapped %v, err %v", swapped, err)
	}

	// Publisher raced the boot: a new file landed before New ran. The
	// stale boot hash must not mask it.
	srv2 := serve.NewServer(snap, serve.Config{})
	writeSnapshotVersion(t, testSnapshot("raced boot"), path, serve.SnapshotVersion)
	r2, err := New(srv2, Config{Path: path, BootSHA: bootSHA, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if swapped, err := r2.Reload(false); err != nil || !swapped {
		t.Fatalf("boot-window snapshot missed: swapped %v, err %v", swapped, err)
	}
	mustMatch(t, srv2, "raced boot", 0)
}

// TestStatPreservingPublishIsEventuallySeen pins the periodic re-hash:
// a publish that preserves both mtime and size (coarse-timestamp
// filesystem, `cp -p`-style tooling) is invisible to the stat fast
// path, but must still be installed within statRehashEvery checks.
func TestStatPreservingPublishIsEventuallySeen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")

	// Boot on a tagged snapshot so the replacement — same tag length,
	// same trigram shape — serializes to the same byte count.
	writeSnapshotVersion(t, testSnapshot("tag aaa1"), path, serve.SnapshotVersion)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerWithMeta(snap, serve.Config{},
		serve.SnapshotMeta{Path: path, SHA256: shaHex(data)})
	r, err := New(srv, Config{Path: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	// Settle the stat memo with one ordinary check.
	if swapped, err := r.Reload(false); err != nil || swapped {
		t.Fatalf("settling check: swapped %v, err %v", swapped, err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Restoring the old mtime makes the publish stat-invisible.
	writeSnapshotVersion(t, testSnapshot("tag aaa2"), path, serve.SnapshotVersion)
	if err := os.Chtimes(path, before.ModTime(), before.ModTime()); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatalf("test setup failed to preserve stat: %v/%d -> %v/%d",
			before.ModTime(), before.Size(), after.ModTime(), after.Size())
	}

	swappedAt := 0
	for i := 1; i <= statRehashEvery+1; i++ {
		swapped, err := r.Reload(false)
		if err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
		if swapped {
			swappedAt = i
			break
		}
	}
	if swappedAt == 0 {
		t.Fatalf("stat-preserving publish never installed within %d checks", statRehashEvery+1)
	}
	t.Logf("stat-preserving publish installed at check %d", swappedAt)
	mustMatch(t, srv, "tag aaa2", 0)
}

// TestPollerPicksUpNewSnapshot runs the watcher loop and drops a new
// snapshot under it.
func TestPollerPicksUpNewSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dict.snap")
	srv, _ := bootServer(t, path, serve.SnapshotVersion)
	r, err := New(srv, Config{Path: path, Interval: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	writeSnapshotVersion(t, testSnapshot("polled in"), path, serve.SnapshotVersion)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, swaps := srv.Generation(); swaps == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("poller never installed the new snapshot: %+v", r.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	mustMatch(t, srv, "polled in", 0)
	cancel()
	<-done
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
