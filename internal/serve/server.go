package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/match"
	"websyn/internal/textnorm"
)

// Config tunes a Server. The zero value picks sensible production
// defaults; see each field.
type Config struct {
	// CacheSize is the LRU request-cache capacity in entries. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// BatchWorkers bounds the worker pool batch requests fan out on.
	// 0 means GOMAXPROCS.
	BatchWorkers int
	// MaxBatch is the largest number of queries one batch request may
	// carry (legacy /match/batch and /v1/match alike). 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// FuzzyShards is the number of partitions of the trigram fuzzy
	// index. 0 means GOMAXPROCS.
	FuzzyShards int
	// FuzzyLimit is the number of hits /fuzzy returns. 0 means 5.
	FuzzyLimit int
	// MinSim overrides the snapshot's Dice-similarity threshold when
	// positive.
	MinSim float64
}

// Defaults for Config's zero values.
const (
	DefaultCacheSize = 4096
	DefaultMaxBatch  = 1024
)

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.FuzzyLimit <= 0 {
		c.FuzzyLimit = 5
	}
	return c
}

// Server is the online matching tier: one match.Engine over immutable
// dictionary state, plus a request cache and counters. Every endpoint —
// the versioned /v1/match and the legacy /match, /match/batch and
// /fuzzy adapters — routes through the engine via Server.do. All
// methods are safe for concurrent use.
type Server struct {
	cfg        Config
	dataset    string
	dict       *match.Dictionary
	fuzzy      *match.ShardedFuzzyIndex
	engine     *match.Engine
	canonicals []string       // entity ID -> canonical string
	byNorm     map[string]int // canonical norm -> entity ID
	synonyms   map[string][]string
	cache      *lruCache
	start      time.Time

	matchLat latencyRecorder
	batchLat latencyRecorder
	v1Lat    latencyRecorder

	matchReqs    atomic.Uint64
	batchReqs    atomic.Uint64
	batchQueries atomic.Uint64
	fuzzyReqs    atomic.Uint64
	synReqs      atomic.Uint64
	v1Reqs       atomic.Uint64
	v1Queries    atomic.Uint64
}

// NewServer builds the serving state from a snapshot. When the snapshot
// embeds a packed fuzzy index (format version 2) the shards are rebuilt
// from its posting slabs with pure array work; otherwise — version 1
// snapshots, or mine-at-startup — the index is constructed from the
// dictionary here.
func NewServer(snap *Snapshot, cfg Config) *Server {
	cfg = cfg.withDefaults()
	minSim := snap.MinSim
	if cfg.MinSim > 0 {
		minSim = cfg.MinSim
	}
	var fuzzy *match.ShardedFuzzyIndex
	if snap.Fuzzy != nil {
		var err error
		fuzzy, err = snap.Dict.NewShardedFuzzyIndexFromPacked(snap.Fuzzy, minSim, cfg.FuzzyShards)
		if err != nil {
			// A checksummed snapshot should never get here; fall back to
			// a clean rebuild rather than refusing to serve.
			log.Printf("serve: rebuilding fuzzy index, embedded one unusable: %v", err)
		}
	}
	if fuzzy == nil {
		fuzzy = snap.Dict.NewShardedFuzzyIndex(minSim, cfg.FuzzyShards)
	}
	s := &Server{
		cfg:        cfg,
		dataset:    snap.Dataset,
		dict:       snap.Dict,
		fuzzy:      fuzzy,
		engine:     match.NewEngine(snap.Dict, fuzzy, snap.Canonicals, minSim),
		canonicals: snap.Canonicals,
		byNorm:     make(map[string]int, len(snap.Canonicals)),
		synonyms:   snap.Synonyms,
		cache:      newLRU(cfg.CacheSize),
		start:      time.Now(),
	}
	for id, c := range snap.Canonicals {
		s.byNorm[textnorm.Normalize(c)] = id
	}
	return s
}

// Engine returns the server's match engine — the same instance every
// endpoint routes through. Callers get uncached, unmetered access.
func (s *Server) Engine() *match.Engine { return s.engine }

// requestKey is the cache key of a defaulted request: every field that
// shapes the response, plus the normalized query (as tokens, joined
// here) so "Indy 4" and "indy   4" share an entry. Built with one
// allocation — this runs on the cache-hit fast path.
func requestKey(req match.Request, tokens []string) string {
	n := len(string(req.Mode)) + 32
	for _, t := range tokens {
		n += len(t) + 1
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(string(req.Mode))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.TopK))
	b.WriteByte('|')
	if req.MinSim == 0 {
		b.WriteByte('0')
	} else {
		var buf [24]byte
		b.Write(strconv.AppendFloat(buf[:0], req.MinSim, 'g', -1, 64))
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(req.MaxSpanTokens))
	b.WriteByte('|')
	if req.Explain {
		b.WriteByte('e')
	}
	b.WriteByte('|')
	for i, t := range tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	return b.String()
}

// do answers one request through the cache and the engine. The returned
// response may share slices with the cache: treat it as read-only (Do
// detaches for public callers). The bool reports a cache hit; a cached
// response carries the Timing of the request that computed it.
func (s *Server) do(req match.Request) (match.Response, bool, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return match.Response{}, false, err
	}
	tokens := textnorm.Tokenize(req.Query)
	key := requestKey(req, tokens)
	if res, ok := s.cache.Get(key); ok {
		return res, true, nil
	}
	res, err := s.engine.MatchTokens(req, tokens)
	if err != nil {
		return match.Response{}, false, err
	}
	s.cache.Put(key, res)
	return res, false, nil
}

// Do is the public one-call form of the unified API: cache-backed,
// identical semantics to POST /v1/match with a single query. The
// response is detached from the cache and safe to mutate.
func (s *Server) Do(req match.Request) (match.Response, error) {
	res, _, err := s.do(req)
	if err != nil {
		return match.Response{}, err
	}
	return detachResponse(res), nil
}

// detachResponse deep-copies the slices a caller could mutate, so
// neither the caller nor the cache can corrupt the other.
func detachResponse(r match.Response) match.Response {
	if r.Matches != nil {
		r.Matches = append([]match.SpanMatch(nil), r.Matches...)
		for i := range r.Matches {
			if alts := r.Matches[i].Alternates; alts != nil {
				r.Matches[i].Alternates = append([]match.Alternate(nil), alts...)
			}
		}
	}
	if r.Trace != nil {
		r.Trace = append([]match.TraceStep(nil), r.Trace...)
	}
	return r
}

// runPool applies fn to every index in [0, n) on a bounded worker pool.
func (s *Server) runPool(n int, fn func(i int)) {
	workers := s.cfg.BatchWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ---- Legacy compatibility surface ----
//
// MatchResult/MatchedSpan/FuzzyResult/FuzzyHit are the pre-v1 JSON
// shapes. The legacy endpoints keep them byte-for-byte by converting
// engine responses; new clients should use POST /v1/match.

// MatchResult is the JSON shape of one matched query (GET /match, and
// one element of POST /match/batch).
type MatchResult struct {
	Query     string        `json:"query"`
	Matches   []MatchedSpan `json:"matches"`
	Remainder string        `json:"remainder"`
	// Cached reports whether this response came from the request cache.
	Cached bool `json:"cached,omitempty"`
}

// MatchedSpan is one entity mention inside a matched query.
type MatchedSpan struct {
	Canonical string  `json:"canonical"`
	EntityID  int     `json:"entity_id"`
	Span      string  `json:"span"`
	Score     float64 `json:"score"`
	Source    string  `json:"source"`
	Corrected bool    `json:"corrected,omitempty"`
}

// legacyMatchResult converts an engine response to the legacy /match
// shape.
func legacyMatchResult(res match.Response, cached bool) MatchResult {
	out := MatchResult{Query: res.Query, Remainder: res.Remainder, Cached: cached}
	for _, m := range res.Matches {
		out.Matches = append(out.Matches, MatchedSpan{
			Canonical: m.Canonical,
			EntityID:  m.EntityID,
			Span:      m.Span,
			Score:     m.Score,
			Source:    m.Source,
			Corrected: m.Corrected,
		})
	}
	return out
}

// Match segments one query against the dictionary in the legacy
// (segmentation-only) mode, consulting the request cache first.
func (s *Server) Match(query string) MatchResult {
	res, cached, err := s.do(match.Request{Query: query, Mode: match.ModeSegment, TopK: 1})
	if err != nil {
		// Only an empty query reaches here; the legacy shape for it is an
		// empty segmentation.
		return MatchResult{}
	}
	return legacyMatchResult(res, cached)
}

// MatchBatch segments many queries with a bounded worker pool, returning
// results in input order.
func (s *Server) MatchBatch(queries []string) []MatchResult {
	out := make([]MatchResult, len(queries))
	s.runPool(len(queries), func(i int) {
		out[i] = s.Match(queries[i])
	})
	return out
}

// Handler returns the HTTP API:
//
//	POST /v1/match          — unified match API: single + batch, all
//	                          modes, explain traces (see docs/API.md)
//	GET  /match?q=<query>   — legacy: segment one query
//	POST /match/batch       — legacy: segment many queries (JSON body)
//	GET  /fuzzy?q=<query>   — legacy: whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /healthz           — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/match", s.handleV1Match)
	mux.HandleFunc("GET /match", s.handleMatch)
	mux.HandleFunc("POST /match/batch", s.handleBatch)
	mux.HandleFunc("GET /fuzzy", s.handleFuzzy)
	mux.HandleFunc("GET /synonyms", s.handleSynonyms)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.matchReqs.Add(1)
	t0 := time.Now()
	res := s.Match(q)
	s.matchLat.observe(time.Since(t0))
	writeJSON(w, res)
}

// BatchRequest is the JSON body of POST /match/batch.
type BatchRequest struct {
	Queries []string `json:"queries"`
}

// BatchResponse is the JSON shape of POST /match/batch.
type BatchResponse struct {
	Count   int           `json:"count"`
	Results []MatchResult `json:"results"`
}

// bodyLimit scales the request-body cap with the configured batch size
// (queries are short; 512 bytes each is generous) so a raised -max-batch
// is not silently capped by a byte limit.
func (s *Server) bodyLimit() int64 {
	return int64(1<<20) + 512*int64(s.cfg.MaxBatch)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries array", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	s.batchReqs.Add(1)
	s.batchQueries.Add(uint64(len(req.Queries)))
	t0 := time.Now()
	results := s.MatchBatch(req.Queries)
	s.batchLat.observe(time.Since(t0))
	writeJSON(w, BatchResponse{Count: len(results), Results: results})
}

// FuzzyResult is the JSON shape of /fuzzy.
type FuzzyResult struct {
	Query string     `json:"query"`
	Hits  []FuzzyHit `json:"hits"`
}

// FuzzyHit is one whole-string fuzzy hit.
type FuzzyHit struct {
	Text       string  `json:"text"`
	Similarity float64 `json:"similarity"`
	Canonical  string  `json:"canonical"`
	EntityID   int     `json:"entity_id"`
}

func (s *Server) handleFuzzy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.fuzzyReqs.Add(1)
	res := FuzzyResult{Query: q}
	limit := s.cfg.FuzzyLimit
	if limit > match.MaxTopK {
		limit = match.MaxTopK
	}
	eres, _, err := s.do(match.Request{Query: q, Mode: match.ModeFuzzy, TopK: limit})
	if err == nil {
		for _, m := range eres.Matches {
			res.Hits = append(res.Hits, FuzzyHit{
				Text:       m.Span,
				Similarity: m.Similarity,
				Canonical:  m.Canonical,
				EntityID:   m.EntityID,
			})
		}
	}
	writeJSON(w, res)
}

// SynonymsResult is the JSON shape of /synonyms.
type SynonymsResult struct {
	Input    string   `json:"input"`
	Synonyms []string `json:"synonyms"`
}

func (s *Server) handleSynonyms(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("u")
	if u == "" {
		http.Error(w, "missing u parameter", http.StatusBadRequest)
		return
	}
	s.synReqs.Add(1)
	norm := textnorm.Normalize(u)
	id, ok := s.byNorm[norm]
	if !ok {
		http.Error(w, "unknown canonical string", http.StatusNotFound)
		return
	}
	writeJSON(w, SynonymsResult{Input: s.canonicals[id], Synonyms: s.synonyms[norm]})
}

// Stats is the JSON shape of /statsz.
type Stats struct {
	Dataset       string  `json:"dataset"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Dictionary    struct {
		Entries      int `json:"entries"`
		Entities     int `json:"entities"`
		FuzzyStrings int `json:"fuzzy_strings"`
		FuzzyShards  int `json:"fuzzy_shards"`
	} `json:"dictionary"`
	Cache    CacheStats `json:"cache"`
	Requests struct {
		Match        uint64 `json:"match"`
		Batch        uint64 `json:"batch"`
		BatchQueries uint64 `json:"batch_queries"`
		Fuzzy        uint64 `json:"fuzzy"`
		Synonyms     uint64 `json:"synonyms"`
		V1           uint64 `json:"v1"`
		V1Queries    uint64 `json:"v1_queries"`
	} `json:"requests"`
	Latency struct {
		Match LatencyStats `json:"match"`
		Batch LatencyStats `json:"batch"`
		V1    LatencyStats `json:"v1"`
	} `json:"latency"`
}

// Stats returns a point-in-time view of the server's counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.Dataset = s.dataset
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Dictionary.Entries = s.dict.Len()
	st.Dictionary.Entities = len(s.canonicals)
	st.Dictionary.FuzzyStrings = s.fuzzy.Len()
	st.Dictionary.FuzzyShards = s.fuzzy.Shards()
	st.Cache = s.cache.Stats()
	st.Requests.Match = s.matchReqs.Load()
	st.Requests.Batch = s.batchReqs.Load()
	st.Requests.BatchQueries = s.batchQueries.Load()
	st.Requests.Fuzzy = s.fuzzyReqs.Load()
	st.Requests.Synonyms = s.synReqs.Load()
	st.Requests.V1 = s.v1Reqs.Load()
	st.Requests.V1Queries = s.v1Queries.Load()
	st.Latency.Match = s.matchLat.snapshot()
	st.Latency.Batch = s.batchLat.snapshot()
	st.Latency.V1 = s.v1Lat.snapshot()
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}
