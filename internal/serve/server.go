package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/match"
	"websyn/internal/rewrite"
	"websyn/internal/textnorm"
)

// Config tunes a Server. The zero value picks sensible production
// defaults; see each field.
type Config struct {
	// CacheSize is the request-cache capacity in entries (across all
	// shards). 0 means DefaultCacheSize; negative disables caching.
	CacheSize int
	// CacheShards is the number of lock stripes the request cache is
	// split into, rounded down to a power of two. 0 means one shard per
	// CPU (GOMAXPROCS), capped so each shard holds at least 8 entries.
	CacheShards int
	// BatchWorkers bounds the worker pool batch requests fan out on.
	// 0 means GOMAXPROCS.
	BatchWorkers int
	// MaxBatch is the largest number of queries one batch request may
	// carry (legacy /match/batch and /v1/match alike). 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// FuzzyShards is the number of partitions of the trigram fuzzy
	// index. 0 means GOMAXPROCS.
	FuzzyShards int
	// FuzzyLimit is the number of hits /fuzzy returns. 0 means 5.
	FuzzyLimit int
	// MinSim overrides the snapshot's Dice-similarity threshold when
	// positive.
	MinSim float64
}

// Defaults for Config's zero values.
const (
	DefaultCacheSize = 4096
	DefaultMaxBatch  = 1024
)

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.FuzzyLimit <= 0 {
		c.FuzzyLimit = 5
	}
	return c
}

// fuzzyIndexer is the trigram-index capability a generation carries:
// lookup plus the shape stats /statsz reports. Both the sharded index
// and the flat index (which mmap-backed snapshots serve from zero-copy)
// satisfy it.
type fuzzyIndexer interface {
	match.FuzzyLookup
	Len() int
	Shards() int
}

// generation is everything the server derives from one snapshot: the
// compiled dictionary, the sharded fuzzy index, the engine over both,
// the entity/synonym tables, and the request cache (caches never
// outlive the dictionary they were computed against). A generation is
// immutable once installed; hot reload builds a new one off-thread and
// swaps the server's pointer, so every request is answered entirely by
// the generation it loaded first.
type generation struct {
	id         uint64 // 1 for the boot generation, +1 per swap
	dataset    string
	meta       SnapshotMeta
	buildDur   time.Duration
	loadedAt   time.Time
	dict       *match.Dictionary
	fuzzy      fuzzyIndexer
	engine     *match.Engine
	canonicals []string       // entity ID -> canonical string
	byNorm     map[string]int // canonical norm -> entity ID
	synonyms   map[string][]string
	cache      *requestCache
	// flight collapses concurrent identical cache misses into one
	// engine run. Like the cache it is generation-scoped: a stale
	// generation's in-flight result can never satisfy a request pinned
	// to a fresh one.
	flight flightGroup
	// scratch pools the per-request match arenas. It lives on the
	// generation, not the server, so a request pinned to an old
	// generation can never hand its scratch — and the engine-owned
	// strings a response aliases — to a request on a new one: arenas
	// retire with the dictionary they matched against.
	scratch sync.Pool // *match.Scratch
}

// SnapshotMeta records the provenance of an installed snapshot, for
// /admin/snapshot and operator logs. All fields are optional.
type SnapshotMeta struct {
	// Path is the snapshot file the state was loaded from; empty for
	// state mined in-process.
	Path string `json:"path,omitempty"`
	// SHA256 is the hex digest of the snapshot file bytes.
	SHA256 string `json:"sha256,omitempty"`
	// Version is the snapshot file layout version; 0 means the state
	// was built in-process (no file).
	Version int `json:"version,omitempty"`
}

// Generation is a fully built, not-yet-installed serving state: the
// output of Server.Prepare and the input of Server.Install. The reload
// subsystem validates one with canary queries (via Engine) before
// swapping it in.
type Generation struct {
	g *generation
}

// Engine returns the generation's match engine, for pre-install
// validation.
func (g *Generation) Engine() *match.Engine { return g.g.engine }

// Dataset returns the data-set name the generation was mined from.
func (g *Generation) Dataset() string { return g.g.dataset }

// Entities returns the size of the generation's entity table.
func (g *Generation) Entities() int { return len(g.g.canonicals) }

// Canonicals returns the generation's entity table (ID -> canonical
// string). Callers must treat it as read-only.
func (g *Generation) Canonicals() []string { return g.g.canonicals }

// Server is the online matching tier: one match.Engine over immutable
// dictionary state, plus a request cache and counters. Every endpoint —
// the versioned /v1/match and the legacy /match, /match/batch and
// /fuzzy adapters — routes through the engine via Server.do. All
// methods are safe for concurrent use.
//
// The snapshot-derived state lives behind an atomic generation handle:
// Prepare builds a new generation from a fresh snapshot off the request
// path and Install swaps it in without dropping traffic (see
// internal/serve/reload for the watcher that drives this).
type Server struct {
	cfg   Config
	gen   atomic.Pointer[generation]
	start time.Time

	matchLat latencyRecorder
	batchLat latencyRecorder
	v1Lat    latencyRecorder
	v2Lat    latencyRecorder

	matchReqs    atomic.Uint64
	batchReqs    atomic.Uint64
	batchQueries atomic.Uint64
	fuzzyReqs    atomic.Uint64
	synReqs      atomic.Uint64
	v1Reqs       atomic.Uint64
	v1Queries    atomic.Uint64
	v2Reqs       atomic.Uint64
	v2Queries    atomic.Uint64
	// routedQueries counts queries delivered to this server by a domain
	// Registry (exact routes and federated fan-out legs alike); always
	// zero on a standalone single-snapshot server.
	routedQueries atomic.Uint64
}

// NewServer builds the serving state from a snapshot. When the snapshot
// embeds a packed fuzzy index (format version 2) the shards are rebuilt
// from its posting slabs with pure array work; otherwise — version 1
// snapshots, or mine-at-startup — the index is constructed from the
// dictionary here.
func NewServer(snap *Snapshot, cfg Config) *Server {
	return NewServerWithMeta(snap, cfg, SnapshotMeta{})
}

// NewServerWithMeta is NewServer recording where the boot snapshot came
// from (file path, SHA-256), so /admin/snapshot reports provenance from
// generation 1 instead of only after the first hot swap.
func NewServerWithMeta(snap *Snapshot, cfg Config, meta SnapshotMeta) *Server {
	s := &Server{cfg: cfg.withDefaults(), start: time.Now()}
	g, err := s.Prepare(snap, meta)
	if err != nil {
		// Only a nil snapshot/dictionary reaches here — a programming
		// error, not an input error.
		panic(err)
	}
	g.g.id = 1
	g.g.loadedAt = time.Now()
	s.gen.Store(g.g)
	return s
}

// Prepare builds a complete serving generation from a snapshot — the
// expensive part of a reload (shard assembly, entity-table indexing) —
// without touching the live state. Install swaps the result in. The
// returned generation carries meta for /admin/snapshot; a zero
// meta.Version falls back to the snapshot's own Version field.
func (s *Server) Prepare(snap *Snapshot, meta SnapshotMeta) (*Generation, error) {
	if snap == nil || snap.Dict == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	if meta.Version == 0 {
		meta.Version = snap.Version
	}
	t0 := time.Now()
	cfg := s.cfg
	minSim := snap.MinSim
	if cfg.MinSim > 0 {
		minSim = cfg.MinSim
	}
	var fuzzy fuzzyIndexer
	if snap.Fuzzy != nil {
		if snap.Fuzzy.Mapped() {
			// An mmap-backed packed index serves through a flat index that
			// aliases the mapped slabs zero-copy; sharding would deep-copy
			// every posting into anonymous memory and forfeit page-cache
			// sharing across processes.
			fi, err := snap.Dict.NewFuzzyIndexFromPacked(snap.Fuzzy, minSim)
			if err != nil {
				log.Printf("serve: rebuilding fuzzy index, mapped one unusable: %v", err)
			} else {
				fuzzy = fi
			}
		} else {
			sfi, err := snap.Dict.NewShardedFuzzyIndexFromPacked(snap.Fuzzy, minSim, cfg.FuzzyShards)
			if err != nil {
				// A checksummed snapshot should never get here; fall back to
				// a clean rebuild rather than refusing to serve.
				log.Printf("serve: rebuilding fuzzy index, embedded one unusable: %v", err)
			} else {
				fuzzy = sfi
			}
		}
	}
	if fuzzy == nil {
		fuzzy = snap.Dict.NewShardedFuzzyIndex(minSim, cfg.FuzzyShards)
	}
	engine := match.NewEngine(snap.Dict, fuzzy, snap.Canonicals, minSim)
	if snap.Vocab != nil {
		// The attribute rewriter only runs on requests that opt in
		// (Rewrite, set by the /v2 surface), so attaching it cannot
		// change a /v1 response.
		engine.SetRewriter(rewrite.NewRewriter(snap.Vocab, minSim))
	}
	g := &generation{
		dataset:    snap.Dataset,
		meta:       meta,
		dict:       snap.Dict,
		fuzzy:      fuzzy,
		engine:     engine,
		canonicals: snap.Canonicals,
		byNorm:     make(map[string]int, len(snap.Canonicals)),
		synonyms:   snap.Synonyms,
		cache:      newRequestCache(cfg.CacheSize, cfg.CacheShards),
	}
	for id, c := range snap.Canonicals {
		g.byNorm[textnorm.Normalize(c)] = id
	}
	g.scratch.New = func() any { return match.NewScratch() }
	g.buildDur = time.Since(t0)
	return &Generation{g: g}, nil
}

// Install atomically swaps a prepared generation into the serving path.
// In-flight requests finish on the generation they started with; new
// requests see the new dictionary, engine and a fresh (empty) request
// cache. Install returns the new generation number.
func (s *Server) Install(g *Generation) uint64 {
	ng := g.g
	ng.loadedAt = time.Now()
	for {
		old := s.gen.Load()
		ng.id = old.id + 1 // not yet visible to readers: safe to set
		if s.gen.CompareAndSwap(old, ng) {
			return ng.id
		}
	}
}

// Generation returns the current generation number (1 at boot, +1 per
// Install) and the number of snapshot swaps performed since boot. The
// swap count is the generation number minus one — derived, so the two
// can never disagree.
func (s *Server) Generation() (id, swaps uint64) {
	id = s.gen.Load().id
	return id, id - 1
}

// Engine returns the current generation's match engine — the instance
// every endpoint routes through right now. Callers get uncached,
// unmetered access; across a hot reload a retained pointer goes stale,
// so long-lived callers should re-fetch per request.
func (s *Server) Engine() *match.Engine { return s.gen.Load().engine }

// appendRequestKey appends the cache key of a defaulted request to
// dst: every field that shapes the response, plus the normalized query
// (so "Indy 4" and "indy   4" share an entry; norm is the arena's
// space-joined token sequence). Append-style so the cache-hit fast
// path builds the key into a stack buffer with zero allocations — the
// cache and flight group borrow the bytes and copy only when they must
// retain them (a miss).
//
//websyn:hotpath
func appendRequestKey(dst []byte, req match.Request, norm string) []byte {
	dst = append(dst, string(req.Mode)...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(req.TopK), 10)
	dst = append(dst, '|')
	if req.MinSim == 0 {
		dst = append(dst, '0')
	} else {
		dst = strconv.AppendFloat(dst, req.MinSim, 'g', -1, 64)
	}
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(req.MaxSpanTokens), 10)
	dst = append(dst, '|')
	if req.Explain {
		dst = append(dst, 'e')
	}
	if req.Rewrite {
		// /v2 responses carry attributes; they must not share cache
		// entries with the /v1 shape of the same query.
		dst = append(dst, 'r')
	}
	dst = append(dst, '|')
	dst = append(dst, norm...)
	return dst
}

// doGenView answers one request on a pinned generation through the
// pooled match arena, passing the response to visit instead of
// returning it. The response is read-only and only valid during the
// visit call (it may alias the generation's scratch arena); stable
// reports whether it is instead backed by stable heap memory (a cache
// hit, or the clone made to populate the cache) that survives the call
// but still must not be mutated. visit runs at most once, before
// doGenView returns.
//
// This is the allocation-free steady state: with caching disabled, a
// request performs zero heap allocations end to end; with caching on, a
// hit builds its key in a stack buffer and allocates nothing, and the
// only per-miss allocations are the retained key copies and the one
// stable clone the cache keeps.
//
// Misses are collapsed through the generation's flight group: of K
// concurrent identical uncached requests, exactly one (the leader) runs
// the engine; the rest block until the leader publishes its clone and
// share it. The leader stores the clone in the cache before finishing,
// so a request arriving after the flight ends hits the cache instead of
// starting a new run.
//
//websyn:hotpath
func (s *Server) doGenView(g *generation, req match.Request, visit func(res *match.Response, cached, stable bool)) error {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return err
	}
	sc := g.scratch.Get().(*match.Scratch)
	defer g.scratch.Put(sc)
	sc.Tokenize(req.Query)
	if g.cache == nil {
		res, err := g.engine.MatchPrepared(req, sc)
		if err != nil {
			return err
		}
		visit(res, false, false)
		return nil
	}
	var kb [192]byte
	key := appendRequestKey(kb[:0], req, sc.Norm())
	if res, ok := g.cache.Get(key); ok {
		visit(res, true, true)
		return nil
	}
	c, leader := g.flight.join(key)
	if !leader {
		res, err := c.wait()
		if err != nil {
			return err
		}
		g.flight.hits.Add(1)
		visit(&res, false, true)
		return nil
	}
	res, err := g.engine.MatchPrepared(req, sc)
	if err != nil {
		g.flight.finish(c, match.Response{}, err)
		return err
	}
	stable := match.CloneResponse(res)
	g.cache.Put(key, stable)
	g.flight.finish(c, stable, nil)
	visit(&stable, false, true)
	return nil
}

// DoView is the view-based form of Do: cache-backed, identical
// semantics, but the response is passed to visit instead of copied out,
// so steady-state callers (benchmarks, proxies that marshal in place)
// skip the defensive copy. The response is read-only and valid only
// during visit — it may alias a pooled arena that the next request
// rewrites; retain it with match.CloneResponse. cached reports a
// request-cache hit.
func (s *Server) DoView(req match.Request, visit func(res *match.Response, cached bool)) error {
	return s.doGenView(s.gen.Load(), req, func(res *match.Response, cached, _ bool) {
		visit(res, cached)
	})
}

// do answers one request through the cache and the engine. The returned
// response may share slices with the cache: treat it as read-only (Do
// detaches for public callers). The bool reports a cache hit; a cached
// response carries the Timing of the request that computed it.
func (s *Server) do(req match.Request) (match.Response, bool, error) {
	return s.doGen(s.gen.Load(), req)
}

// doGen is do pinned to one generation. Handlers load the generation
// once per HTTP request and thread it through, so a whole request —
// every item of a batch included — is answered by one consistent
// dictionary even when a hot reload lands mid-request.
func (s *Server) doGen(g *generation, req match.Request) (match.Response, bool, error) {
	var out match.Response
	var hit bool
	err := s.doGenView(g, req, func(res *match.Response, cached, stable bool) {
		hit = cached
		if stable {
			out = *res
		} else {
			// Arena-backed (cache disabled): clone before the scratch is
			// pooled again.
			out = match.CloneResponse(res)
		}
	})
	if err != nil {
		return match.Response{}, false, err
	}
	return out, hit, nil
}

// Do is the public one-call form of the unified API: cache-backed,
// identical semantics to POST /v1/match with a single query. The
// response is detached from the cache and safe to mutate.
func (s *Server) Do(req match.Request) (match.Response, error) {
	res, _, err := s.do(req)
	if err != nil {
		return match.Response{}, err
	}
	return detachResponse(res), nil
}

// DoItem answers one routed /v1/match item programmatically — the entry
// point the fleet wire protocol calls into. A single-snapshot server has
// exactly one dictionary, so domain routing (a pinned domain or a
// domains fan-out list) is rejected with the same message the HTTP
// handler uses; errors are per-item, never transport-level. The returned
// response may share slices with the request cache: read-only.
func (s *Server) DoItem(it match.Request, domains []string) V1Result {
	if len(domains) > 0 {
		return V1Result{Error: "domains requires a multi-domain server (matchd -snapshot name=path)"}
	}
	if it.Domain != "" {
		return V1Result{Error: fmt.Sprintf("domain %q: domain routing requires a multi-domain server (matchd -snapshot name=path)", it.Domain)}
	}
	s.routedQueries.Add(1)
	res, cached, err := s.do(it)
	if err != nil {
		return V1Result{Error: err.Error()}
	}
	return V1Result{Response: &res, Cached: cached}
}

// detachResponse deep-copies the slices a caller could mutate, so
// neither the caller nor the cache can corrupt the other.
func detachResponse(r match.Response) match.Response {
	if r.Matches != nil {
		r.Matches = append([]match.SpanMatch(nil), r.Matches...)
		for i := range r.Matches {
			if alts := r.Matches[i].Alternates; alts != nil {
				r.Matches[i].Alternates = append([]match.Alternate(nil), alts...)
			}
		}
	}
	if r.Trace != nil {
		r.Trace = append([]match.TraceStep(nil), r.Trace...)
	}
	if r.Attributes != nil {
		r.Attributes = append([]match.Predicate(nil), r.Attributes...)
	}
	return r
}

// runPool applies fn to every index in [0, n) on a bounded worker pool.
func (s *Server) runPool(n int, fn func(i int)) {
	runPool(s.cfg.BatchWorkers, n, fn)
}

// runPool is the pool shared by Server batches and Registry fan-outs.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Workers claim fixed-size chunks of the index space, not single
	// indexes: one atomic RMW per chunk instead of per item. With short
	// per-item work (a cached match is under a microsecond) a per-item
	// counter serializes every worker on one cache line and flattens
	// batch throughput beyond a few workers. Chunks of n/(workers*8)
	// keep ~8 claims per worker for tail balance.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ---- Legacy compatibility surface ----
//
// MatchResult/MatchedSpan/FuzzyResult/FuzzyHit are the pre-v1 JSON
// shapes. The legacy endpoints keep them byte-for-byte by converting
// engine responses; new clients should use POST /v1/match.

// MatchResult is the JSON shape of one matched query (GET /match, and
// one element of POST /match/batch).
type MatchResult struct {
	Query     string        `json:"query"`
	Matches   []MatchedSpan `json:"matches"`
	Remainder string        `json:"remainder"`
	// Cached reports whether this response came from the request cache.
	Cached bool `json:"cached,omitempty"`
}

// MatchedSpan is one entity mention inside a matched query.
type MatchedSpan struct {
	Canonical string  `json:"canonical"`
	EntityID  int     `json:"entity_id"`
	Span      string  `json:"span"`
	Score     float64 `json:"score"`
	Source    string  `json:"source"`
	Corrected bool    `json:"corrected,omitempty"`
}

// legacyMatchResult converts an engine response to the legacy /match
// shape.
func legacyMatchResult(res match.Response, cached bool) MatchResult {
	out := MatchResult{Query: res.Query, Remainder: res.Remainder, Cached: cached}
	for _, m := range res.Matches {
		out.Matches = append(out.Matches, MatchedSpan{
			Canonical: m.Canonical,
			EntityID:  m.EntityID,
			Span:      m.Span,
			Score:     m.Score,
			Source:    m.Source,
			Corrected: m.Corrected,
		})
	}
	return out
}

// Match segments one query against the dictionary in the legacy
// (segmentation-only) mode, consulting the request cache first.
func (s *Server) Match(query string) MatchResult {
	return s.matchGen(s.gen.Load(), query)
}

// matchGen is Match pinned to one generation (see doGen).
func (s *Server) matchGen(g *generation, query string) MatchResult {
	res, cached, err := s.doGen(g, match.Request{Query: query, Mode: match.ModeSegment, TopK: 1})
	if err != nil {
		// Only an empty query reaches here; the legacy shape for it is an
		// empty segmentation.
		return MatchResult{}
	}
	return legacyMatchResult(res, cached)
}

// MatchBatch segments many queries with a bounded worker pool, returning
// results in input order. The whole batch runs against one generation:
// a hot reload mid-batch cannot mix dictionaries within one response.
func (s *Server) MatchBatch(queries []string) []MatchResult {
	g := s.gen.Load()
	out := make([]MatchResult, len(queries))
	s.runPool(len(queries), func(i int) {
		out[i] = s.matchGen(g, queries[i])
	})
	return out
}

// Handler returns the HTTP API:
//
//	POST /v1/match          — unified match API: single + batch, all
//	                          modes, explain traces (see docs/API.md)
//	POST /v2/match          — v1 plus the structured rewrite stage:
//	                          typed attribute predicates + residual
//	GET  /match?q=<query>   — deprecated: segment one query
//	POST /match/batch       — deprecated: segment many queries (JSON body)
//	GET  /fuzzy?q=<query>   — deprecated: whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /admin/snapshot    — generation, snapshot provenance, swap count
//	GET  /healthz           — liveness
//
// POST /admin/reload is served by the reload subsystem; see
// internal/serve/reload.Reloader.Mount.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux)
	return mux
}

// Mount registers the server's endpoints on an existing mux, so callers
// composing extra routes (the reload admin surface) share one router.
// The pre-v1 adapters (/match, /match/batch, /fuzzy) are mounted behind
// the deprecation shim: same bytes, plus Deprecation/Sunset headers
// pointing clients at the versioned surface.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/match", s.handleV1Match)
	mux.HandleFunc("POST /v2/match", s.handleV2Match)
	mux.HandleFunc("GET /match", deprecated(s.handleMatch))
	mux.HandleFunc("POST /match/batch", deprecated(s.handleBatch))
	mux.HandleFunc("GET /fuzzy", deprecated(s.handleFuzzy))
	mux.HandleFunc("GET /synonyms", s.handleSynonyms)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeText(w, "ok\n")
	})
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.matchReqs.Add(1)
	t0 := time.Now()
	res := s.Match(q)
	s.matchLat.observe(time.Since(t0))
	writeJSON(w, res)
}

// BatchRequest is the JSON body of POST /match/batch.
type BatchRequest struct {
	Queries []string `json:"queries"`
}

// BatchResponse is the JSON shape of POST /match/batch.
type BatchResponse struct {
	Count   int           `json:"count"`
	Results []MatchResult `json:"results"`
}

// bodyLimit scales the request-body cap with the configured batch size
// (queries are short; 512 bytes each is generous) so a raised -max-batch
// is not silently capped by a byte limit.
func (s *Server) bodyLimit() int64 {
	return v1BodyLimit(s.cfg.MaxBatch)
}

// v1BodyLimit is the shared request-body cap formula (Server and
// Registry must agree, or the differential guarantees break).
func v1BodyLimit(maxBatch int) int64 {
	return int64(1<<20) + 512*int64(maxBatch)
}

// V1BodyLimit is the /v1/match request-body cap for a given batch
// limit — exported so the fleet router applies the same cap as the
// replicas behind it.
func V1BodyLimit(maxBatch int) int64 { return v1BodyLimit(maxBatch) }

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries array", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	s.batchReqs.Add(1)
	s.batchQueries.Add(uint64(len(req.Queries)))
	t0 := time.Now()
	results := s.MatchBatch(req.Queries)
	s.batchLat.observe(time.Since(t0))
	writeJSON(w, BatchResponse{Count: len(results), Results: results})
}

// FuzzyResult is the JSON shape of /fuzzy.
type FuzzyResult struct {
	Query string     `json:"query"`
	Hits  []FuzzyHit `json:"hits"`
}

// FuzzyHit is one whole-string fuzzy hit.
type FuzzyHit struct {
	Text       string  `json:"text"`
	Similarity float64 `json:"similarity"`
	Canonical  string  `json:"canonical"`
	EntityID   int     `json:"entity_id"`
}

func (s *Server) handleFuzzy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.fuzzyReqs.Add(1)
	res := FuzzyResult{Query: q}
	limit := s.cfg.FuzzyLimit
	if limit > match.MaxTopK {
		limit = match.MaxTopK
	}
	eres, _, err := s.do(match.Request{Query: q, Mode: match.ModeFuzzy, TopK: limit})
	if err == nil {
		for _, m := range eres.Matches {
			res.Hits = append(res.Hits, FuzzyHit{
				Text:       m.Span,
				Similarity: m.Similarity,
				Canonical:  m.Canonical,
				EntityID:   m.EntityID,
			})
		}
	}
	writeJSON(w, res)
}

// SynonymsResult is the JSON shape of /synonyms.
type SynonymsResult struct {
	Input    string   `json:"input"`
	Synonyms []string `json:"synonyms"`
}

func (s *Server) handleSynonyms(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("u")
	if u == "" {
		http.Error(w, "missing u parameter", http.StatusBadRequest)
		return
	}
	s.synReqs.Add(1)
	g := s.gen.Load()
	norm := textnorm.Normalize(u)
	id, ok := g.byNorm[norm]
	if !ok {
		http.Error(w, "unknown canonical string", http.StatusNotFound)
		return
	}
	writeJSON(w, SynonymsResult{Input: g.canonicals[id], Synonyms: g.synonyms[norm]})
}

// Stats is the JSON shape of /statsz.
type Stats struct {
	Dataset       string  `json:"dataset"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Generation is the serving generation: 1 at boot, +1 per snapshot
	// hot-swap. Swaps counts the swaps since boot (Generation - 1).
	Generation uint64 `json:"generation"`
	Swaps      uint64 `json:"swaps"`
	// SnapshotVersion is the layout version of the installed snapshot
	// file (0 when the dictionary was mined in-process).
	SnapshotVersion int `json:"snapshot_version,omitempty"`
	Dictionary      struct {
		Entries      int `json:"entries"`
		Entities     int `json:"entities"`
		FuzzyStrings int `json:"fuzzy_strings"`
		FuzzyShards  int `json:"fuzzy_shards"`
	} `json:"dictionary"`
	Cache    CacheStats `json:"cache"`
	Requests struct {
		Match        uint64 `json:"match"`
		Batch        uint64 `json:"batch"`
		BatchQueries uint64 `json:"batch_queries"`
		Fuzzy        uint64 `json:"fuzzy"`
		Synonyms     uint64 `json:"synonyms"`
		V1           uint64 `json:"v1"`
		V1Queries    uint64 `json:"v1_queries"`
		// V2/V2Queries count POST /v2/match traffic; omitted (zero)
		// until the first v2 request, so the legacy /statsz shape is
		// unchanged for v1-only deployments.
		V2        uint64 `json:"v2,omitempty"`
		V2Queries uint64 `json:"v2_queries,omitempty"`
		// RoutedQueries counts queries a domain Registry delivered to
		// this server; omitted (zero) on standalone servers, so the
		// legacy /statsz shape is unchanged.
		RoutedQueries uint64 `json:"routed_queries,omitempty"`
	} `json:"requests"`
	Latency struct {
		Match LatencyStats `json:"match"`
		Batch LatencyStats `json:"batch"`
		V1    LatencyStats `json:"v1"`
		// V2 appears once /v2/match has served a request.
		V2 *LatencyStats `json:"v2,omitempty"`
	} `json:"latency"`
}

// Stats returns a point-in-time view of the server's counters. Cache
// stats are the current generation's: a hot reload installs a fresh
// cache, so they restart at zero after a swap.
func (s *Server) Stats() Stats {
	g := s.gen.Load()
	var st Stats
	st.Dataset = g.dataset
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Generation = g.id
	st.Swaps = g.id - 1
	st.SnapshotVersion = g.meta.Version
	st.Dictionary.Entries = g.dict.Len()
	st.Dictionary.Entities = len(g.canonicals)
	st.Dictionary.FuzzyStrings = g.fuzzy.Len()
	st.Dictionary.FuzzyShards = g.fuzzy.Shards()
	st.Cache = g.cache.Stats()
	st.Cache.SingleflightHits = g.flight.hits.Load()
	st.Cache.SingleflightShared = g.flight.shared.Load()
	st.Requests.Match = s.matchReqs.Load()
	st.Requests.Batch = s.batchReqs.Load()
	st.Requests.BatchQueries = s.batchQueries.Load()
	st.Requests.Fuzzy = s.fuzzyReqs.Load()
	st.Requests.Synonyms = s.synReqs.Load()
	st.Requests.V1 = s.v1Reqs.Load()
	st.Requests.V1Queries = s.v1Queries.Load()
	st.Requests.V2 = s.v2Reqs.Load()
	st.Requests.V2Queries = s.v2Queries.Load()
	st.Requests.RoutedQueries = s.routedQueries.Load()
	st.Latency.Match = s.matchLat.snapshot()
	st.Latency.Batch = s.batchLat.snapshot()
	st.Latency.V1 = s.v1Lat.snapshot()
	if st.Requests.V2 > 0 {
		v2 := s.v2Lat.snapshot()
		st.Latency.V2 = &v2
	}
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// SnapshotInfo is the JSON shape of GET /admin/snapshot: which
// dictionary generation is live and where it came from.
type SnapshotInfo struct {
	// Generation is 1 for the boot snapshot and increments on every
	// hot swap; Swaps is the number of swaps since boot.
	Generation uint64 `json:"generation"`
	Swaps      uint64 `json:"swaps"`
	Dataset    string `json:"dataset"`
	// Snapshot is the provenance of the installed file (path, SHA-256,
	// layout version); zero-valued for in-process mined state.
	Snapshot SnapshotMeta `json:"snapshot"`
	// BuildMillis is how long Prepare took to assemble this generation
	// (shard assembly, entity indexing) before it was swapped in.
	BuildMillis float64 `json:"build_ms"`
	// LoadedAt is when the generation was installed.
	LoadedAt    time.Time `json:"loaded_at"`
	Entities    int       `json:"entities"`
	DictEntries int       `json:"dict_entries"`
}

// SnapshotInfo returns the live generation's provenance.
func (s *Server) SnapshotInfo() SnapshotInfo {
	g := s.gen.Load()
	return SnapshotInfo{
		Generation:  g.id,
		Swaps:       g.id - 1,
		Dataset:     g.dataset,
		Snapshot:    g.meta,
		BuildMillis: float64(g.buildDur.Nanoseconds()) / 1e6,
		LoadedAt:    g.loadedAt,
		Entities:    len(g.canonicals),
		DictEntries: g.dict.Len(),
	}
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.SnapshotInfo())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

// writeText writes a small plain-text body (healthz and friends),
// logging a failed write like writeJSON does.
func writeText(w http.ResponseWriter, body string) {
	if _, err := io.WriteString(w, body); err != nil {
		log.Printf("serve: writing response: %v", err)
	}
}
