package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/match"
	"websyn/internal/textnorm"
)

// Config tunes a Server. The zero value picks sensible production
// defaults; see each field.
type Config struct {
	// CacheSize is the LRU request-cache capacity in entries. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// BatchWorkers bounds the worker pool a /match/batch request fans
	// out on. 0 means GOMAXPROCS.
	BatchWorkers int
	// MaxBatch is the largest number of queries one /match/batch request
	// may carry. 0 means DefaultMaxBatch.
	MaxBatch int
	// FuzzyShards is the number of partitions of the trigram fuzzy
	// index. 0 means GOMAXPROCS.
	FuzzyShards int
	// FuzzyLimit is the number of hits /fuzzy returns. 0 means 5.
	FuzzyLimit int
	// MinSim overrides the snapshot's Dice-similarity threshold when
	// positive.
	MinSim float64
}

// Defaults for Config's zero values.
const (
	DefaultCacheSize = 4096
	DefaultMaxBatch  = 1024
)

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.FuzzyLimit <= 0 {
		c.FuzzyLimit = 5
	}
	return c
}

// Server is the online matching tier: immutable dictionary state plus a
// request cache and counters. All methods are safe for concurrent use.
type Server struct {
	cfg        Config
	dataset    string
	dict       *match.Dictionary
	fuzzy      *match.ShardedFuzzyIndex
	canonicals []string       // entity ID -> canonical string
	byNorm     map[string]int // canonical norm -> entity ID
	synonyms   map[string][]string
	cache      *lruCache
	start      time.Time

	matchLat latencyRecorder
	batchLat latencyRecorder

	matchReqs    atomic.Uint64
	batchReqs    atomic.Uint64
	batchQueries atomic.Uint64
	fuzzyReqs    atomic.Uint64
	synReqs      atomic.Uint64
}

// NewServer builds the serving state from a snapshot. When the snapshot
// embeds a packed fuzzy index (format version 2) the shards are rebuilt
// from its posting slabs with pure array work; otherwise — version 1
// snapshots, or mine-at-startup — the index is constructed from the
// dictionary here.
func NewServer(snap *Snapshot, cfg Config) *Server {
	cfg = cfg.withDefaults()
	minSim := snap.MinSim
	if cfg.MinSim > 0 {
		minSim = cfg.MinSim
	}
	var fuzzy *match.ShardedFuzzyIndex
	if snap.Fuzzy != nil {
		var err error
		fuzzy, err = snap.Dict.NewShardedFuzzyIndexFromPacked(snap.Fuzzy, minSim, cfg.FuzzyShards)
		if err != nil {
			// A checksummed snapshot should never get here; fall back to
			// a clean rebuild rather than refusing to serve.
			log.Printf("serve: rebuilding fuzzy index, embedded one unusable: %v", err)
		}
	}
	if fuzzy == nil {
		fuzzy = snap.Dict.NewShardedFuzzyIndex(minSim, cfg.FuzzyShards)
	}
	s := &Server{
		cfg:        cfg,
		dataset:    snap.Dataset,
		dict:       snap.Dict,
		fuzzy:      fuzzy,
		canonicals: snap.Canonicals,
		byNorm:     make(map[string]int, len(snap.Canonicals)),
		synonyms:   snap.Synonyms,
		cache:      newLRU(cfg.CacheSize),
		start:      time.Now(),
	}
	for id, c := range snap.Canonicals {
		s.byNorm[textnorm.Normalize(c)] = id
	}
	return s
}

// MatchResult is the JSON shape of one matched query (/match, and one
// element of /match/batch).
type MatchResult struct {
	Query     string        `json:"query"`
	Matches   []MatchedSpan `json:"matches"`
	Remainder string        `json:"remainder"`
	// Cached reports whether this response came from the request cache.
	Cached bool `json:"cached,omitempty"`
}

// MatchedSpan is one entity mention inside a matched query.
type MatchedSpan struct {
	Canonical string  `json:"canonical"`
	EntityID  int     `json:"entity_id"`
	Span      string  `json:"span"`
	Score     float64 `json:"score"`
	Source    string  `json:"source"`
	Corrected bool    `json:"corrected,omitempty"`
}

// Match segments one query against the dictionary, consulting the
// request cache first. The cache key is the normalized query, so "Indy 4"
// and "indy   4" share an entry.
func (s *Server) Match(query string) MatchResult {
	tokens := textnorm.Tokenize(query)
	key := strings.Join(tokens, " ")
	if res, ok := s.cache.Get(key); ok {
		res.Cached = true
		return res.detach()
	}
	res := s.segment(tokens)
	s.cache.Put(key, res.detach())
	return res
}

// detach returns the result with its Matches slice detached from any
// shared backing array, so neither callers mutating a returned result
// nor the cache can corrupt the other.
func (r MatchResult) detach() MatchResult {
	r.Matches = append([]MatchedSpan(nil), r.Matches...)
	return r
}

// segment runs the uncached match path over already-normalized tokens.
func (s *Server) segment(tokens []string) MatchResult {
	seg := s.dict.SegmentTokens(tokens)
	res := MatchResult{Query: seg.Query, Remainder: seg.Remainder}
	for _, m := range seg.Matches {
		if m.EntityID < 0 || m.EntityID >= len(s.canonicals) {
			continue
		}
		res.Matches = append(res.Matches, MatchedSpan{
			Canonical: s.canonicals[m.EntityID],
			EntityID:  m.EntityID,
			Span:      m.Text,
			Score:     m.Score,
			Source:    m.Source,
			Corrected: m.Corrected,
		})
	}
	return res
}

// MatchBatch segments many queries with a bounded worker pool, returning
// results in input order.
func (s *Server) MatchBatch(queries []string) []MatchResult {
	out := make([]MatchResult, len(queries))
	workers := s.cfg.BatchWorkers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = s.Match(q)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = s.Match(queries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Handler returns the HTTP API:
//
//	GET  /match?q=<query>   — segment one query
//	POST /match/batch       — segment many queries (JSON body)
//	GET  /fuzzy?q=<query>   — whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /healthz           — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /match", s.handleMatch)
	mux.HandleFunc("POST /match/batch", s.handleBatch)
	mux.HandleFunc("GET /fuzzy", s.handleFuzzy)
	mux.HandleFunc("GET /synonyms", s.handleSynonyms)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.matchReqs.Add(1)
	t0 := time.Now()
	res := s.Match(q)
	s.matchLat.observe(time.Since(t0))
	writeJSON(w, res)
}

// BatchRequest is the JSON body of POST /match/batch.
type BatchRequest struct {
	Queries []string `json:"queries"`
}

// BatchResponse is the JSON shape of POST /match/batch.
type BatchResponse struct {
	Count   int           `json:"count"`
	Results []MatchResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	// Scale the body cap with the configured batch size (queries are
	// short; 512 bytes each is generous) so a raised -max-batch is not
	// silently capped by a byte limit.
	limit := int64(1<<20) + 512*int64(s.cfg.MaxBatch)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty queries array", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	s.batchReqs.Add(1)
	s.batchQueries.Add(uint64(len(req.Queries)))
	t0 := time.Now()
	results := s.MatchBatch(req.Queries)
	s.batchLat.observe(time.Since(t0))
	writeJSON(w, BatchResponse{Count: len(results), Results: results})
}

// FuzzyResult is the JSON shape of /fuzzy.
type FuzzyResult struct {
	Query string     `json:"query"`
	Hits  []FuzzyHit `json:"hits"`
}

// FuzzyHit is one whole-string fuzzy hit.
type FuzzyHit struct {
	Text       string  `json:"text"`
	Similarity float64 `json:"similarity"`
	Canonical  string  `json:"canonical"`
	EntityID   int     `json:"entity_id"`
}

func (s *Server) handleFuzzy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	s.fuzzyReqs.Add(1)
	res := FuzzyResult{Query: q}
	for _, h := range s.fuzzy.Lookup(q, s.cfg.FuzzyLimit) {
		if len(h.Entries) == 0 {
			continue
		}
		id := h.Entries[0].EntityID
		if id < 0 || id >= len(s.canonicals) {
			continue
		}
		res.Hits = append(res.Hits, FuzzyHit{
			Text:       h.Text,
			Similarity: h.Similarity,
			Canonical:  s.canonicals[id],
			EntityID:   id,
		})
	}
	writeJSON(w, res)
}

// SynonymsResult is the JSON shape of /synonyms.
type SynonymsResult struct {
	Input    string   `json:"input"`
	Synonyms []string `json:"synonyms"`
}

func (s *Server) handleSynonyms(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("u")
	if u == "" {
		http.Error(w, "missing u parameter", http.StatusBadRequest)
		return
	}
	s.synReqs.Add(1)
	norm := textnorm.Normalize(u)
	id, ok := s.byNorm[norm]
	if !ok {
		http.Error(w, "unknown canonical string", http.StatusNotFound)
		return
	}
	writeJSON(w, SynonymsResult{Input: s.canonicals[id], Synonyms: s.synonyms[norm]})
}

// Stats is the JSON shape of /statsz.
type Stats struct {
	Dataset       string  `json:"dataset"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Dictionary    struct {
		Entries      int `json:"entries"`
		Entities     int `json:"entities"`
		FuzzyStrings int `json:"fuzzy_strings"`
		FuzzyShards  int `json:"fuzzy_shards"`
	} `json:"dictionary"`
	Cache    CacheStats `json:"cache"`
	Requests struct {
		Match        uint64 `json:"match"`
		Batch        uint64 `json:"batch"`
		BatchQueries uint64 `json:"batch_queries"`
		Fuzzy        uint64 `json:"fuzzy"`
		Synonyms     uint64 `json:"synonyms"`
	} `json:"requests"`
	Latency struct {
		Match LatencyStats `json:"match"`
		Batch LatencyStats `json:"batch"`
	} `json:"latency"`
}

// Stats returns a point-in-time view of the server's counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.Dataset = s.dataset
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Dictionary.Entries = s.dict.Len()
	st.Dictionary.Entities = len(s.canonicals)
	st.Dictionary.FuzzyStrings = s.fuzzy.Len()
	st.Dictionary.FuzzyShards = s.fuzzy.Shards()
	st.Cache = s.cache.Stats()
	st.Requests.Match = s.matchReqs.Load()
	st.Requests.Batch = s.batchReqs.Load()
	st.Requests.BatchQueries = s.batchQueries.Load()
	st.Requests.Fuzzy = s.fuzzyReqs.Load()
	st.Requests.Synonyms = s.synReqs.Load()
	st.Latency.Match = s.matchLat.snapshot()
	st.Latency.Batch = s.batchLat.snapshot()
	return st
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}
