//go:build unix

package serve

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the pages are
// backed by the file in the OS page cache: clean, evictable under
// memory pressure, and shared with every other process mapping the same
// snapshot. The returned function unmaps; the file descriptor may be
// closed as soon as mmapFile returns.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
