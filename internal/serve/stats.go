package serve

import (
	"sync/atomic"
	"time"
)

// latencyRecorder accumulates request latencies lock-free.
type latencyRecorder struct {
	count    atomic.Uint64
	sumNanos atomic.Uint64
	maxNanos atomic.Uint64
}

// observe records one request duration.
func (l *latencyRecorder) observe(d time.Duration) {
	n := uint64(d.Nanoseconds())
	l.count.Add(1)
	l.sumNanos.Add(n)
	for {
		cur := l.maxNanos.Load()
		if n <= cur || l.maxNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// LatencyStats is one endpoint's latency section of /statsz.
type LatencyStats struct {
	Count       uint64  `json:"count"`
	MeanMicros  float64 `json:"mean_us"`
	MaxMicros   float64 `json:"max_us"`
	TotalMillis float64 `json:"total_ms"`
}

// snapshot returns a point-in-time view of the recorder.
func (l *latencyRecorder) snapshot() LatencyStats {
	count := l.count.Load()
	sum := l.sumNanos.Load()
	s := LatencyStats{
		Count:       count,
		MaxMicros:   float64(l.maxNanos.Load()) / 1e3,
		TotalMillis: float64(sum) / 1e6,
	}
	if count > 0 {
		s.MeanMicros = float64(sum) / float64(count) / 1e3
	}
	return s
}
