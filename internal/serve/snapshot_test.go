package serve

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"websyn/internal/match"
	"websyn/internal/rewrite"
)

// testSnapshot builds a small but structured snapshot: several entities,
// mined synonyms, multi-entry strings.
func testSnapshot() *Snapshot {
	d := match.NewDictionary()
	d.Add("Indiana Jones and the Kingdom of the Crystal Skull",
		match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("indy 4", match.Entry{EntityID: 0, Score: 0.8125, Source: "mined"})
	d.Add("indiana jones 4", match.Entry{EntityID: 0, Score: 0.75, Source: "mined"})
	d.Add("kingdom of the crystal skull", match.Entry{EntityID: 0, Score: 0.7, Source: "mined"})
	d.Add("Madagascar: Escape 2 Africa", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("madagascar 2", match.Entry{EntityID: 1, Score: 0.9, Source: "mined"})
	// An ambiguous string resolving to two entities.
	d.Add("madagascar", match.Entry{EntityID: 1, Score: 0.5, Source: "mined"})
	d.Add("madagascar", match.Entry{EntityID: 2, Score: 0.4, Source: "mined"})
	d.Add("Madagascar", match.Entry{EntityID: 2, Score: 1, Source: "canonical"})
	return &Snapshot{
		Dataset: "Movies",
		MinSim:  0.55,
		Fuzzy:   d.NewFuzzyIndex(0.55).Packed(),
		Canonicals: []string{
			"Indiana Jones and the Kingdom of the Crystal Skull",
			"Madagascar: Escape 2 Africa",
			"Madagascar",
		},
		Synonyms: map[string][]string{
			"indiana jones and the kingdom of the crystal skull": {"indy 4", "indiana jones 4"},
			"madagascar escape 2 africa":                         {"madagascar 2"},
		},
		Dict: d,
	}
}

// testVocabulary is a small but structurally complete attribute
// vocabulary: both column kinds, every lexicon family populated.
func testVocabulary() *rewrite.Vocabulary {
	return &rewrite.Vocabulary{
		Domain: "movies",
		Numeric: []rewrite.NumericColumn{{
			Name: "year", Min: 2008, Max: 2008,
			Values:     []float64{2008},
			UnitTokens: []string{"year"},
			Comparators: []rewrite.Comparator{
				{Token: "before", Op: "lt"}, {Token: "since", Op: "gte"},
			},
			Bands: []rewrite.Band{{Token: "recent", Op: "gte", Value: 2008}},
		}},
		Categorical: []rewrite.CategoricalColumn{
			{Name: "genre", Values: []string{"action", "adventure", "comedy"}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	n, err := snap.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != snap.Dataset {
		t.Errorf("Dataset %q, want %q", got.Dataset, snap.Dataset)
	}
	if got.MinSim != snap.MinSim {
		t.Errorf("MinSim %v, want %v", got.MinSim, snap.MinSim)
	}
	if !reflect.DeepEqual(got.Canonicals, snap.Canonicals) {
		t.Errorf("Canonicals %v, want %v", got.Canonicals, snap.Canonicals)
	}
	if !reflect.DeepEqual(got.Synonyms, snap.Synonyms) {
		t.Errorf("Synonyms %v, want %v", got.Synonyms, snap.Synonyms)
	}
	if got.Dict.Len() != snap.Dict.Len() {
		t.Fatalf("Dict.Len %d, want %d", got.Dict.Len(), snap.Dict.Len())
	}
	if !reflect.DeepEqual(got.Fuzzy, snap.Fuzzy) {
		t.Errorf("packed fuzzy index diverged after round-trip:\n got %+v\nwant %+v", got.Fuzzy, snap.Fuzzy)
	}

	// The loaded dictionary must behave identically: every string, every
	// entry, every segmentation.
	wantDump := dumpDict(snap.Dict)
	gotDump := dumpDict(got.Dict)
	if !reflect.DeepEqual(gotDump, wantDump) {
		t.Errorf("dictionary content diverged:\n got %v\nwant %v", gotDump, wantDump)
	}
	for _, q := range []string{
		"showtimes for indy 4 near san francisco",
		"madagascar 2 trailer",
		"watch madagascar online",
		"indianna jones 4",
	} {
		want := snap.Dict.Segment(q)
		got := got.Dict.Segment(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Segment(%q) diverged after round-trip:\n got %+v\nwant %+v", q, got, want)
		}
	}
}

// dumpDict flattens a dictionary into a comparable structure.
func dumpDict(d *match.Dictionary) map[string][]match.Entry {
	out := make(map[string][]match.Entry)
	d.ForEach(func(text string, entries []match.Entry) {
		out[text] = append([]match.Entry(nil), entries...)
	})
	return out
}

// TestSnapshotReadsVersion1 pins backward compatibility: a version 1
// file (no fuzzy section) must load, with servers rebuilding the index
// from the dictionary.
func TestSnapshotReadsVersion1(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if _, err := snap.writeTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("version 1 snapshot rejected: %v", err)
	}
	if got.Fuzzy != nil {
		t.Fatal("version 1 snapshot produced a fuzzy section")
	}
	if got.Dict.Len() != snap.Dict.Len() {
		t.Fatalf("Dict.Len %d, want %d", got.Dict.Len(), snap.Dict.Len())
	}
	// A server over the v1 snapshot must serve the same fuzzy hits as
	// one over the v2 snapshot with the embedded index.
	v1 := NewServer(got, Config{CacheSize: -1, FuzzyShards: 3})
	v2 := NewServer(snap, Config{CacheSize: -1, FuzzyShards: 3})
	for _, q := range []string{"madagascar2", "indianna jones 4", "indy4"} {
		a := v1.gen.Load().fuzzy.Lookup(q, 5)
		b := v2.gen.Load().fuzzy.Lookup(q, 5)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fuzzy Lookup(%q) diverged between v1 rebuild and v2 embedded:\n v1 %+v\n v2 %+v", q, a, b)
		}
	}
}

// TestSnapshotVocabularyRoundTrip pins the v4 section: an attached
// vocabulary survives the write/read cycle intact, and a snapshot
// without one reads back with Vocab nil (presence byte 0).
func TestSnapshotVocabularyRoundTrip(t *testing.T) {
	snap := testSnapshot()
	snap.Vocab = testVocabulary()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vocab, snap.Vocab) {
		t.Errorf("vocabulary diverged after round-trip:\n got %+v\nwant %+v", got.Vocab, snap.Vocab)
	}

	bare := testSnapshot()
	buf.Reset()
	if _, err := bare.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Vocab != nil {
		t.Errorf("nil vocabulary came back non-nil: %+v", got.Vocab)
	}
}

// TestSnapshotWritesVersion3 pins the crossgrade path: WriteToVersion(3)
// must still emit a file older readers accept, dropping the vocabulary
// section — the deployment story for mixed-version fleets.
func TestSnapshotWritesVersion3(t *testing.T) {
	snap := testSnapshot()
	snap.Vocab = testVocabulary()
	var buf bytes.Buffer
	if _, err := snap.WriteToVersion(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != 3 {
		t.Fatalf("version byte %d, want 3", v)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v3 crossgrade snapshot rejected: %v", err)
	}
	if got.Vocab != nil {
		t.Errorf("v3 snapshot produced a vocabulary: %+v", got.Vocab)
	}
	if got.Dict.Len() != snap.Dict.Len() {
		t.Fatalf("Dict.Len %d, want %d", got.Dict.Len(), snap.Dict.Len())
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	snap := testSnapshot()
	path := filepath.Join(t.TempDir(), "dict.snap")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dict.Len() != snap.Dict.Len() {
		t.Fatalf("Dict.Len %d, want %d", got.Dict.Len(), snap.Dict.Len())
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	snap := testSnapshot()
	var a, b bytes.Buffer
	if _, err := snap.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serializations of the same snapshot differ")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = SnapshotVersion + 1
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted unknown version")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted corrupted payload")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)-5])); err == nil {
			t.Fatal("accepted truncated snapshot")
		}
	})
}
