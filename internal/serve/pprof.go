package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// MountProfiling registers the net/http/pprof handlers under
// /debug/pprof/ and turns on the two contention profiles the serving
// path is tuned with: the mutex profile (lock hold times — cache shard
// locks, the flight group, the batch pool) and the block profile
// (goroutine wait times — flight waiters, pool queues). Sampling rates
// are fixed at a fraction cheap enough for production one-offs: one in
// 100 mutex contention events, and blocking events of one millisecond
// or longer.
//
// Deliberately not mounted by Server.Mount or Registry.Mount: the pprof
// endpoints expose heap contents and symbol tables, so binaries opt in
// per listener (matchd/router -pprof). See
// docs/PERFORMANCE.md#profiling-contention.
func MountProfiling(mux *http.ServeMux) {
	runtime.SetMutexProfileFraction(100)
	runtime.SetBlockProfileRate(int(1e6)) // nanoseconds: sample blocks >= 1ms

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
