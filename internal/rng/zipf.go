package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks from a bounded Zipf (zeta) distribution over
// {0, 1, ..., n-1}: P(rank = i) proportional to 1/(i+1)^exponent.
//
// The simulator uses Zipf rank popularity for entities and for alias query
// volume, matching the heavy-tailed query-frequency distributions observed in
// real search logs — the property that makes Table I's camera tail collapse
// for the Wikipedia and random-walk baselines.
//
// For the catalog sizes in this repository (n <= a few thousand) an explicit
// cumulative table with binary search is both simple and fast (one Float64,
// one binary search per sample).
type Zipf struct {
	cdf      []float64
	exponent float64
}

// NewZipf builds a bounded Zipf sampler over n ranks with the given exponent.
// It panics if n <= 0 or exponent < 0.
func NewZipf(n int, exponent float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if exponent < 0 {
		panic("rng: NewZipf called with exponent < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -exponent)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1.0 // guard against float drift
	return &Zipf{cdf: cdf, exponent: exponent}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Exponent returns the configured skew exponent.
func (z *Zipf) Exponent() float64 { return z.exponent }

// Sample draws a rank in [0, n) using randomness from src.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Weighted samples indices in proportion to arbitrary non-negative weights
// using Walker's alias method: O(n) construction, O(1) per sample.
type Weighted struct {
	prob  []float64
	alias []int
	total float64
}

// NewWeighted builds an alias-method sampler over the given weights.
// Weights must be non-negative with a positive sum.
func NewWeighted(weights []float64) (*Weighted, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: NewWeighted called with no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: NewWeighted requires a positive total weight")
	}

	w := &Weighted{
		prob:  make([]float64, n),
		alias: make([]int, n),
		total: total,
	}
	// Scale weights so the average bucket holds probability 1.
	scaled := make([]float64, n)
	for i, x := range weights {
		scaled[i] = x * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, x := range scaled {
		if x < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		w.prob[s] = scaled[s]
		w.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains gets probability 1 (float drift leaves a few).
	for _, i := range large {
		w.prob[i] = 1
		w.alias[i] = i
	}
	for _, i := range small {
		w.prob[i] = 1
		w.alias[i] = i
	}
	return w, nil
}

// MustWeighted is NewWeighted that panics on error, for statically known
// weight tables.
func MustWeighted(weights []float64) *Weighted {
	w, err := NewWeighted(weights)
	if err != nil {
		panic(err)
	}
	return w
}

// N returns the number of outcomes.
func (w *Weighted) N() int { return len(w.prob) }

// Total returns the sum of the original weights.
func (w *Weighted) Total() float64 { return w.total }

// Sample draws an index in proportion to its weight.
func (w *Weighted) Sample(src *Source) int {
	i := src.Intn(len(w.prob))
	if src.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}
