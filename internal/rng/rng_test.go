package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling children produced identical first output")
	}
	// Splitting must be reproducible from the same parent seed.
	parent2 := New(7)
	d1 := parent2.Split()
	if c1.state == 0 || d1.Uint64() == 0 {
		// d1 already consumed one output above? No: c1 consumed, d1 fresh.
	}
	e := New(7).Split()
	f := New(7).Split()
	if e.Uint64() != f.Uint64() {
		t.Fatal("Split is not deterministic")
	}
}

func TestSplitNCount(t *testing.T) {
	kids := New(3).SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN(8) returned %d children", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two children produced the same first output")
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(11)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolRate(t *testing.T) {
	s := New(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleSwapCount(t *testing.T) {
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	New(29).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Must still contain the same multiset.
	count := map[string]int{}
	for _, x := range xs {
		count[x]++
	}
	for _, x := range orig {
		count[x]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("shuffle lost/gained element %q", k)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(31)
	const p = 0.25
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(37)
	for _, lambda := range []float64{0.5, 2, 10, 80} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := New(1).Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d", got)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(41)
	sum, sumSq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(100, 1.0)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(50, 1.1)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Zipf prob not monotone at rank %d", i)
		}
	}
}

func TestZipfSampleRange(t *testing.T) {
	z := NewZipf(10, 0.9)
	s := New(43)
	for i := 0; i < 10000; i++ {
		r := z.Sample(s)
		if r < 0 || r >= 10 {
			t.Fatalf("Zipf sample %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	s := New(47)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	if counts[0] <= counts[50] {
		t.Fatal("Zipf head rank not more popular than middle rank")
	}
	// Empirical frequency of rank 0 should be close to its mass.
	got := float64(counts[0]) / n
	want := z.Prob(0)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank 0 frequency %v, want ~%v", got, want)
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-9 {
			t.Fatalf("exponent 0: Prob(%d) = %v, want 0.25", i, z.Prob(i))
		}
	}
}

func TestWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Fatal("NewWeighted(nil) succeeded")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Fatal("NewWeighted(zeros) succeeded")
	}
	if _, err := NewWeighted([]float64{1, -2}); err == nil {
		t.Fatal("NewWeighted(negative) succeeded")
	}
	if _, err := NewWeighted([]float64{math.NaN()}); err == nil {
		t.Fatal("NewWeighted(NaN) succeeded")
	}
}

func TestWeightedProportions(t *testing.T) {
	w := MustWeighted([]float64{1, 2, 7})
	s := New(53)
	counts := make([]int, 3)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[w.Sample(s)]++
	}
	wants := []float64{0.1, 0.2, 0.7}
	for i, want := range wants {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedSingleOutcome(t *testing.T) {
	w := MustWeighted([]float64{5})
	s := New(59)
	for i := 0; i < 100; i++ {
		if w.Sample(s) != 0 {
			t.Fatal("single-outcome sampler returned nonzero index")
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w := MustWeighted([]float64{0, 1, 0, 1})
	s := New(61)
	for i := 0; i < 50000; i++ {
		v := w.Sample(s)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

// Property: Intn(n) is always within range for arbitrary seeds and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same stream — regardless of seed value.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Weighted sampler never returns an out-of-range index.
func TestQuickWeightedInRange(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		w, err := NewWeighted(weights)
		if err != nil {
			return false
		}
		s := New(seed)
		for i := 0; i < 30; i++ {
			v := w.Sample(s)
			if v < 0 || v >= len(weights) {
				return false
			}
			if weights[v] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(1000, 1.0)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(s)
	}
}

func BenchmarkWeightedSample(b *testing.B) {
	weights := make([]float64, 1000)
	for i := range weights {
		weights[i] = float64(i%17 + 1)
	}
	w := MustWeighted(weights)
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Sample(s)
	}
}
