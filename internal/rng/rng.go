// Package rng provides small, fast, deterministic random number generation
// for the websyn simulation pipeline.
//
// Everything in the pipeline that needs randomness draws from an *rng.Source
// seeded explicitly by the caller, so any experiment is reproducible
// bit-for-bit from its seed. The stdlib math/rand is deliberately not used:
// its global state makes runs harder to pin down, and the pipeline needs
// splittable streams (one independent sub-stream per simulated user shard)
// which splitmix64 provides naturally.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source based on splitmix64.
//
// splitmix64 is the 64-bit finalizer-based generator from Steele, Lea and
// Flood, "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014). It
// passes BigCrush, has a full 2^64 period over its state increment, and —
// crucially for the simulator — supports cheap "splitting": deriving an
// independent child stream from a parent without sharing state.
//
// The zero value is a valid source seeded with 0; most callers should use
// New.
type Source struct {
	state uint64
}

// golden is the odd constant 2^64/phi used as the splitmix64 state increment.
const golden = 0x9E3779B97F4A7C15

// New returns a Source seeded with seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a child Source from s. The child's stream is independent of
// the parent's future output. Calling Split advances the parent.
func (s *Source) Split() *Source {
	// Mix the parent's next raw output into a fresh state. The extra mix64
	// decorrelates child streams spawned in sequence.
	return &Source{state: mix64(s.Uint64() + golden)}
}

// SplitN derives n independent child sources in one call.
func (s *Source) SplitN(n int) []*Source {
	kids := make([]*Source, n)
	for i := range kids {
		kids[i] = s.Split()
	}
	return kids
}

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased without a modulo in
	// the common path.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles xs in place (Fisher-Yates).
func (s *Source) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// PickString returns a uniformly chosen element of xs. It panics on an empty
// slice.
func (s *Source) PickString(xs []string) string {
	return xs[s.Intn(len(xs))]
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success (support
// {0, 1, 2, ...}). p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	n := 0
	for !s.Bool(p) {
		n++
		if n > 1<<20 {
			// Statistically unreachable for sane p; guards against a loop on
			// denormal p values.
			return n
		}
	}
	return n
}

// Poisson returns a Poisson(lambda) sample using Knuth's method for small
// lambda and a normal approximation above 64 (simulator click counts stay
// small, so the approximation branch is rarely exercised but keeps the call
// O(1) in the worst case).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		// Normal approximation with continuity correction.
		v := lambda + s.Norm()*math.Sqrt(lambda) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// Knuth: multiply uniforms until the product drops below e^-lambda.
	limit := math.Exp(-lambda)
	n := 0
	prod := s.Float64()
	for prod > limit {
		n++
		prod *= s.Float64()
	}
	return n
}

// Norm returns a standard normal sample.
func (s *Source) Norm() float64 {
	// Polar (Marsaglia) variant: rejection-samples a point in the unit disc.
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}
