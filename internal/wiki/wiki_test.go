package wiki

import (
	"testing"

	"websyn/internal/alias"
	"websyn/internal/entity"
)

func movieModel(t *testing.T) *alias.Model {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	m, err := alias.Build(cat, alias.MovieParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cameraModel(t *testing.T) *alias.Model {
	t.Helper()
	cat, err := entity.Cameras2008()
	if err != nil {
		t.Fatal(err)
	}
	m, err := alias.Build(cat, alias.CameraParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigFor(t *testing.T) {
	if _, err := ConfigFor(entity.Movie, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigFor(entity.Camera, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigFor(entity.Kind(9), 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMovieCoverageBand(t *testing.T) {
	m := movieModel(t)
	b := Build(m, MovieConfig(3))
	ratio := float64(b.Articles()) / float64(m.Catalog().Len())
	// The paper's movie row: 96% hit ratio. Allow a band.
	if ratio < 0.90 || ratio > 1.0 {
		t.Fatalf("movie article coverage %.2f outside [0.90, 1.0]", ratio)
	}
}

func TestCameraCoverageBand(t *testing.T) {
	m := cameraModel(t)
	b := Build(m, CameraConfig(3))
	ratio := float64(b.Articles()) / float64(m.Catalog().Len())
	// The paper's camera row: 11.5% hit ratio. Allow a band.
	if ratio < 0.07 || ratio > 0.17 {
		t.Fatalf("camera article coverage %.3f outside [0.07, 0.17]", ratio)
	}
}

func TestCoverageFollowsPopularity(t *testing.T) {
	m := cameraModel(t)
	b := Build(m, CameraConfig(3))
	headCovered, tailCovered := 0, 0
	head, tail := 0, 0
	for _, e := range m.Catalog().All() {
		if e.PopRank < 100 {
			head++
			if b.HasArticle(e.ID) {
				headCovered++
			}
		} else if e.PopRank >= 500 {
			tail++
			if b.HasArticle(e.ID) {
				tailCovered++
			}
		}
	}
	headRatio := float64(headCovered) / float64(head)
	tailRatio := float64(tailCovered) / float64(tail)
	if headRatio <= tailRatio {
		t.Fatalf("head coverage %.2f not above tail %.2f", headRatio, tailRatio)
	}
}

func TestRedirectsAreTrueSynonyms(t *testing.T) {
	// The baseline is high-precision by construction: every redirect must
	// be oracle-true.
	for _, m := range []*alias.Model{movieModel(t), cameraModel(t)} {
		cfg, err := ConfigFor(m.Catalog().Kind(), 3)
		if err != nil {
			t.Fatal(err)
		}
		b := Build(m, cfg)
		for _, e := range m.Catalog().All() {
			for _, s := range b.SynonymsOf(e.ID) {
				if !m.IsSynonym(e.ID, s) {
					t.Fatalf("redirect %q of %q is not a true synonym", s, e.Canonical)
				}
			}
		}
	}
}

func TestRedirectCountsBounded(t *testing.T) {
	m := movieModel(t)
	cfg := MovieConfig(3)
	b := Build(m, cfg)
	for _, e := range m.Catalog().All() {
		n := len(b.SynonymsOf(e.ID))
		if n > cfg.MaxRedirects {
			t.Fatalf("%q has %d redirects (max %d)", e.Canonical, n, cfg.MaxRedirects)
		}
	}
}

func TestNoArticleNoSynonyms(t *testing.T) {
	m := cameraModel(t)
	b := Build(m, CameraConfig(3))
	for _, e := range m.Catalog().All() {
		if !b.HasArticle(e.ID) && b.SynonymsOf(e.ID) != nil {
			t.Fatalf("%q has redirects without an article", e.Canonical)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	m := movieModel(t)
	b1 := Build(m, MovieConfig(5))
	b2 := Build(m, MovieConfig(5))
	if b1.Articles() != b2.Articles() {
		t.Fatal("article counts differ across builds")
	}
	for _, e := range m.Catalog().All() {
		s1, s2 := b1.SynonymsOf(e.ID), b2.SynonymsOf(e.ID)
		if len(s1) != len(s2) {
			t.Fatalf("redirect counts differ for %q", e.Canonical)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("redirects differ for %q", e.Canonical)
			}
		}
	}
}

func TestSeedChangesSampling(t *testing.T) {
	m := movieModel(t)
	b1 := Build(m, MovieConfig(1))
	b2 := Build(m, MovieConfig(2))
	diff := false
	for _, e := range m.Catalog().All() {
		s1, s2 := b1.SynonymsOf(e.ID), b2.SynonymsOf(e.ID)
		if len(s1) != len(s2) {
			diff = true
			break
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical baselines")
	}
}
