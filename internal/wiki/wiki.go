// Package wiki implements the Wikipedia redirect/disambiguation baseline of
// paper Section IV.B.
//
// The paper harvests redirects ("LOTR" -> "Lord of the Rings") and
// disambiguation entries as synonyms. The approach is high-precision but its
// coverage is gated on an entity being popular enough to have an article at
// all: it hits 96% of the top-100 movies but only 11.5% of the 882 cameras.
//
// The simulation reproduces that mechanism rather than the numbers
// directly: an entity has an article with a probability that falls with its
// popularity rank (movies: nearly always; cameras: essentially only the
// enthusiast head), and an article's redirects are a small sample of the
// entity's true synonyms — editors record the codified alternative names,
// not the long tail of query phrasings.
package wiki

import (
	"fmt"
	"math"
	"sort"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/rng"
)

// Config tunes article coverage and redirect sampling.
type Config struct {
	// Seed drives the deterministic coverage and sampling choices.
	Seed uint64
	// ArticleAtRank0 is the article probability for the most popular
	// entity; ArticleDecay is the exponential decay rate per popularity
	// rank. P(article | rank r) = ArticleAtRank0 * exp(-ArticleDecay * r).
	ArticleAtRank0 float64
	ArticleDecay   float64
	// MinRedirects/MaxRedirects bound how many redirects an article
	// carries (uniform in the range, truncated by synonym availability).
	MinRedirects int
	MaxRedirects int
}

// MovieConfig returns coverage parameters for the movie domain: top-100
// box-office movies essentially all have articles.
func MovieConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		ArticleAtRank0: 1.0,
		ArticleDecay:   0.0006,
		MinRedirects:   2,
		MaxRedirects:   4,
	}
}

// CameraConfig returns coverage parameters for the camera domain: only the
// enthusiast head (DSLRs, flagship compacts) has articles, but those
// articles are redirect-rich (regional market names).
func CameraConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		ArticleAtRank0: 1.0,
		ArticleDecay:   0.0098,
		MinRedirects:   4,
		MaxRedirects:   8,
	}
}

// SoftwareConfig returns coverage parameters for the D3 extension domain:
// major software products are all notable enough for articles, with
// redirect-rich entries (codenames, abbreviations).
func SoftwareConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		ArticleAtRank0: 1.0,
		ArticleDecay:   0.001,
		MinRedirects:   2,
		MaxRedirects:   5,
	}
}

// ConfigFor returns the domain defaults for a catalog kind.
func ConfigFor(kind entity.Kind, seed uint64) (Config, error) {
	switch kind {
	case entity.Movie:
		return MovieConfig(seed), nil
	case entity.Camera:
		return CameraConfig(seed), nil
	case entity.Software:
		return SoftwareConfig(seed), nil
	default:
		return Config{}, fmt.Errorf("wiki: unsupported catalog kind %v", kind)
	}
}

// Baseline is the materialized redirect dictionary.
type Baseline struct {
	redirects map[int][]string // entity ID -> redirect strings (normalized)
}

// Build materializes the baseline from the ground-truth alias model.
func Build(model *alias.Model, cfg Config) *Baseline {
	src := rng.New(cfg.Seed)
	b := &Baseline{redirects: make(map[int][]string)}
	for _, e := range model.Catalog().All() {
		entitySrc := src.Split() // per-entity stream, order-independent
		pArticle := cfg.ArticleAtRank0 * math.Exp(-cfg.ArticleDecay*float64(e.PopRank))
		if !entitySrc.Bool(pArticle) {
			continue
		}
		syns := model.SynonymsOf(e.ID)
		if len(syns) == 0 {
			// An article exists but records no alternative names.
			b.redirects[e.ID] = nil
			continue
		}
		want := cfg.MinRedirects
		if cfg.MaxRedirects > cfg.MinRedirects {
			want += entitySrc.Intn(cfg.MaxRedirects - cfg.MinRedirects + 1)
		}
		if want > len(syns) {
			want = len(syns)
		}
		perm := entitySrc.Perm(len(syns))
		chosen := make([]string, 0, want)
		for _, idx := range perm[:want] {
			chosen = append(chosen, syns[idx])
		}
		sort.Strings(chosen)
		b.redirects[e.ID] = chosen
	}
	return b
}

// HasArticle reports whether the entity has a Wikipedia article in the
// simulated dump.
func (b *Baseline) HasArticle(entityID int) bool {
	_, ok := b.redirects[entityID]
	return ok
}

// SynonymsOf returns the redirect strings of the entity's article (nil when
// no article or no redirects). Callers must not mutate the slice.
func (b *Baseline) SynonymsOf(entityID int) []string { return b.redirects[entityID] }

// Articles returns how many entities have articles.
func (b *Baseline) Articles() int { return len(b.redirects) }
