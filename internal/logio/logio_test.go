package logio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"websyn/internal/clicklog"
	"websyn/internal/search"
)

var demoTuples = []search.Tuple{
	{Query: "the dark knight", PageID: 0, Rank: 1},
	{Query: "the dark knight", PageID: 3, Rank: 2},
	{Query: "iron man", PageID: 17, Rank: 1},
}

var demoClicks = []clicklog.Click{
	{Query: "dark knight", PageID: 0, Count: 42},
	{Query: "dark knight", PageID: 3, Count: 7},
	{Query: "tdk", PageID: 0, Count: 5},
}

func TestSearchTSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSearchTSV(&buf, demoTuples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSearchTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, demoTuples) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestClicksTSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClicksTSV(&buf, demoClicks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClicksTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, demoClicks) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestSearchBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSearchBinary(&buf, demoTuples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSearchBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, demoTuples) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestClicksBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClicksBinary(&buf, demoClicks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClicksBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, demoClicks) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSearchBinary(&buf, demoTuples); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadClicksBinary(&buf); err == nil {
		t.Fatal("click reader accepted search magic")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClicksBinary(&buf, demoClicks); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, 7, len(full) - 1} {
		if _, err := ReadClicksBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClicksBinary(&buf, demoClicks); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first record's query length (byte 6: magic 4 + version 1
	// + count 1).
	b[6] = 0xFF
	b = append(b[:7], append([]byte{0xFF, 0xFF, 0x7F}, b[7:]...)...)
	if _, err := ReadClicksBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestTSVRejectsTabsInQueries(t *testing.T) {
	bad := []search.Tuple{{Query: "a\tb", PageID: 1, Rank: 1}}
	if err := WriteSearchTSV(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("tab in query accepted")
	}
	badClicks := []clicklog.Click{{Query: "a\nb", PageID: 1, Count: 1}}
	if err := WriteClicksTSV(&bytes.Buffer{}, badClicks); err == nil {
		t.Fatal("newline in query accepted")
	}
}

func TestTSVRejectsMalformedLines(t *testing.T) {
	if _, err := ReadSearchTSV(strings.NewReader("only one field\n")); err == nil {
		t.Fatal("malformed search line accepted")
	}
	if _, err := ReadSearchTSV(strings.NewReader("q\tNaN\t1\n")); err == nil {
		t.Fatal("bad page ID accepted")
	}
	if _, err := ReadClicksTSV(strings.NewReader("q\t1\tx\n")); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestTSVSkipsBlankLines(t *testing.T) {
	got, err := ReadClicksTSV(strings.NewReader("\nq\t1\t2\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestImpressionsRoundTrip(t *testing.T) {
	l := clicklog.NewLog()
	for i := 0; i < 5; i++ {
		l.AddImpression("dark knight")
	}
	l.AddImpression("tdk")
	var buf bytes.Buffer
	if err := WriteImpressionsTSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImpressionsTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got["dark knight"] != 5 || got["tdk"] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSearchBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSearchBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty binary produced %v", got)
	}
}

// Property: binary round trip preserves arbitrary click tuples.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(queries []string, pages []uint16, counts []uint16) bool {
		n := len(queries)
		if len(pages) < n {
			n = len(pages)
		}
		if len(counts) < n {
			n = len(counts)
		}
		clicks := make([]clicklog.Click, 0, n)
		for i := 0; i < n; i++ {
			q := queries[i]
			if len(q) > 1000 {
				q = q[:1000]
			}
			clicks = append(clicks, clicklog.Click{
				Query: q, PageID: int(pages[i]), Count: int(counts[i]),
			})
		}
		var buf bytes.Buffer
		if err := WriteClicksBinary(&buf, clicks); err != nil {
			return false
		}
		got, err := ReadClicksBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(clicks) {
			return false
		}
		for i := range got {
			if got[i] != clicks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySmallerThanTSVForLargeLogs(t *testing.T) {
	var clicks []clicklog.Click
	for i := 0; i < 2000; i++ {
		clicks = append(clicks, clicklog.Click{
			Query:  "some moderately long query string",
			PageID: i,
			Count:  i % 50,
		})
	}
	var tsv, bin bytes.Buffer
	if err := WriteClicksTSV(&tsv, clicks); err != nil {
		t.Fatal(err)
	}
	if err := WriteClicksBinary(&bin, clicks); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= tsv.Len() {
		t.Fatalf("binary (%d) not smaller than TSV (%d)", bin.Len(), tsv.Len())
	}
}
