package logio

import (
	"bytes"
	"testing"
)

// FuzzReadClicksBinary feeds arbitrary bytes to the binary reader: it must
// never panic and never allocate unboundedly, only return tuples or an
// error.
func FuzzReadClicksBinary(f *testing.F) {
	// Seed with a valid file and a few mutations.
	var valid bytes.Buffer
	_ = WriteClicksBinary(&valid, demoClicks)
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("WSL1"))
	f.Add([]byte("WSA1\x01\x00"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		clicks, err := ReadClicksBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// On success the result must round-trip.
		var buf bytes.Buffer
		if werr := WriteClicksBinary(&buf, clicks); werr != nil {
			// Negative fields can only come from corruption the reader
			// should have rejected.
			t.Fatalf("accepted tuples that cannot be rewritten: %v", werr)
		}
	})
}

// FuzzReadSearchTSV feeds arbitrary text to the TSV reader.
func FuzzReadSearchTSV(f *testing.F) {
	f.Add("q\t1\t2\n")
	f.Add("")
	f.Add("a\tb\tc\td\n")
	f.Add("query with spaces\t10\t1\n\nnext\t2\t3\n")
	f.Fuzz(func(t *testing.T, data string) {
		tuples, err := ReadSearchTSV(bytes.NewBufferString(data))
		if err != nil {
			return
		}
		for _, tu := range tuples {
			if tu.Query == "" && data != "" {
				// Empty queries can only come from lines like "\t1\t2";
				// they round-trip fine, so they are acceptable — just
				// ensure no panic happened and fields parsed as ints.
				continue
			}
		}
	})
}
