// Package logio serializes the pipeline's two data sets — Search Data A and
// Click Data L — in two interchange formats:
//
//   - TSV: human-inspectable, git-diffable, loadable into any tool.
//   - A length-prefixed binary format: compact and allocation-friendly for
//     large logs.
//
// Both formats are stream-oriented (io.Reader/io.Writer): the miner can run
// from files produced by cmd/loggen without rebuilding the simulation,
// mirroring how the paper's offline pipeline consumed log extracts.
package logio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"websyn/internal/clicklog"
	"websyn/internal/search"
)

// ---- TSV: Search Data ----

// WriteSearchTSV writes tuples as "query<TAB>pageID<TAB>rank" lines.
func WriteSearchTSV(w io.Writer, tuples []search.Tuple) error {
	bw := bufio.NewWriter(w)
	for _, t := range tuples {
		if strings.ContainsAny(t.Query, "\t\n") {
			return fmt.Errorf("logio: query %q contains TSV separators", t.Query)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", t.Query, t.PageID, t.Rank); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSearchTSV parses tuples written by WriteSearchTSV.
func ReadSearchTSV(r io.Reader) ([]search.Tuple, error) {
	var out []search.Tuple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("logio: search TSV line %d: %d fields, want 3", line, len(parts))
		}
		pageID, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("logio: search TSV line %d: bad page ID %q", line, parts[1])
		}
		rank, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("logio: search TSV line %d: bad rank %q", line, parts[2])
		}
		out = append(out, search.Tuple{Query: parts[0], PageID: pageID, Rank: rank})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logio: reading search TSV: %w", err)
	}
	return out, nil
}

// ---- TSV: Click Data ----

// WriteClicksTSV writes clicks as "query<TAB>pageID<TAB>count" lines.
func WriteClicksTSV(w io.Writer, clicks []clicklog.Click) error {
	bw := bufio.NewWriter(w)
	for _, c := range clicks {
		if strings.ContainsAny(c.Query, "\t\n") {
			return fmt.Errorf("logio: query %q contains TSV separators", c.Query)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", c.Query, c.PageID, c.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadClicksTSV parses clicks written by WriteClicksTSV.
func ReadClicksTSV(r io.Reader) ([]clicklog.Click, error) {
	var out []clicklog.Click
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("logio: click TSV line %d: %d fields, want 3", line, len(parts))
		}
		pageID, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("logio: click TSV line %d: bad page ID %q", line, parts[1])
		}
		count, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("logio: click TSV line %d: bad count %q", line, parts[2])
		}
		out = append(out, clicklog.Click{Query: parts[0], PageID: pageID, Count: count})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logio: reading click TSV: %w", err)
	}
	return out, nil
}

// ---- Binary format ----
//
// Layout: magic (4 bytes), version (1 byte), record count (uvarint), then
// per record: query length (uvarint), query bytes, pageID (uvarint),
// value (uvarint) — value is the rank for search tuples and the count for
// clicks.

var (
	searchMagic = [4]byte{'W', 'S', 'A', '1'} // Websyn Search data A
	clickMagic  = [4]byte{'W', 'S', 'L', '1'} // Websyn cLick data L
)

const binaryVersion = 1

// binaryRecord is the common shape of both tuple kinds.
type binaryRecord struct {
	query  string
	pageID int
	value  int
}

func writeBinary(w io.Writer, magic [4]byte, records []binaryRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(records))); err != nil {
		return err
	}
	for _, r := range records {
		if r.pageID < 0 || r.value < 0 {
			return fmt.Errorf("logio: negative field in record %+v", r)
		}
		if err := writeUvarint(uint64(len(r.query))); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.query); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.pageID)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(r.value)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxQueryLen guards against corrupt length prefixes.
const maxQueryLen = 1 << 16

func readBinary(r io.Reader, magic [4]byte) ([]binaryRecord, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("logio: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("logio: bad magic %q, want %q", m[:], magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("logio: reading version: %w", err)
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("logio: unsupported version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("logio: reading record count: %w", err)
	}
	records := make([]binaryRecord, 0, min64(count, 1<<20))
	for i := uint64(0); i < count; i++ {
		qlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("logio: record %d: reading query length: %w", i, err)
		}
		if qlen > maxQueryLen {
			return nil, fmt.Errorf("logio: record %d: query length %d exceeds limit", i, qlen)
		}
		qbuf := make([]byte, qlen)
		if _, err := io.ReadFull(br, qbuf); err != nil {
			return nil, fmt.Errorf("logio: record %d: reading query: %w", i, err)
		}
		pageID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("logio: record %d: reading page ID: %w", i, err)
		}
		value, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("logio: record %d: reading value: %w", i, err)
		}
		records = append(records, binaryRecord{
			query:  string(qbuf),
			pageID: int(pageID),
			value:  int(value),
		})
	}
	return records, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteSearchBinary writes Search Data tuples in the binary format.
func WriteSearchBinary(w io.Writer, tuples []search.Tuple) error {
	records := make([]binaryRecord, len(tuples))
	for i, t := range tuples {
		records[i] = binaryRecord{query: t.Query, pageID: t.PageID, value: t.Rank}
	}
	return writeBinary(w, searchMagic, records)
}

// ReadSearchBinary reads Search Data tuples from the binary format.
func ReadSearchBinary(r io.Reader) ([]search.Tuple, error) {
	records, err := readBinary(r, searchMagic)
	if err != nil {
		return nil, err
	}
	tuples := make([]search.Tuple, len(records))
	for i, rec := range records {
		tuples[i] = search.Tuple{Query: rec.query, PageID: rec.pageID, Rank: rec.value}
	}
	return tuples, nil
}

// WriteClicksBinary writes Click Data tuples in the binary format.
func WriteClicksBinary(w io.Writer, clicks []clicklog.Click) error {
	records := make([]binaryRecord, len(clicks))
	for i, c := range clicks {
		records[i] = binaryRecord{query: c.Query, pageID: c.PageID, value: c.Count}
	}
	return writeBinary(w, clickMagic, records)
}

// ReadClicksBinary reads Click Data tuples from the binary format.
func ReadClicksBinary(r io.Reader) ([]clicklog.Click, error) {
	records, err := readBinary(r, clickMagic)
	if err != nil {
		return nil, err
	}
	clicks := make([]clicklog.Click, len(records))
	for i, rec := range records {
		clicks[i] = clicklog.Click{Query: rec.query, PageID: rec.pageID, Count: rec.value}
	}
	return clicks, nil
}

// ---- Impressions sidecar (query frequency, for weighted metrics) ----

// WriteImpressionsTSV writes "query<TAB>count" lines in sorted order.
func WriteImpressionsTSV(w io.Writer, log *clicklog.Log) error {
	bw := bufio.NewWriter(w)
	for _, q := range log.Queries() {
		if strings.ContainsAny(q, "\t\n") {
			return fmt.Errorf("logio: query %q contains TSV separators", q)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", q, log.Impressions(q)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadImpressionsTSV parses the impressions sidecar.
func ReadImpressionsTSV(r io.Reader) (map[string]int, error) {
	out := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("logio: impressions line %d: %d fields, want 2", line, len(parts))
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("logio: impressions line %d: bad count %q", line, parts[1])
		}
		out[parts[0]] += n
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logio: reading impressions: %w", err)
	}
	return out, nil
}
