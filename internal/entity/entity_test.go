package entity

import (
	"math"
	"strings"
	"testing"

	"websyn/internal/textnorm"
)

func mustMovies(t *testing.T) *Catalog {
	t.Helper()
	c, err := Movies2008()
	if err != nil {
		t.Fatalf("Movies2008: %v", err)
	}
	return c
}

func mustCameras(t *testing.T) *Catalog {
	t.Helper()
	c, err := Cameras2008()
	if err != nil {
		t.Fatalf("Cameras2008: %v", err)
	}
	return c
}

func TestMoviesCount(t *testing.T) {
	if got := mustMovies(t).Len(); got != MovieCount {
		t.Fatalf("movie catalog has %d entries, want %d", got, MovieCount)
	}
}

func TestCamerasCount(t *testing.T) {
	if got := mustCameras(t).Len(); got != CameraCount {
		t.Fatalf("camera catalog has %d entries, want %d", got, CameraCount)
	}
}

func TestMoviesKind(t *testing.T) {
	c := mustMovies(t)
	if c.Kind() != Movie {
		t.Fatal("movie catalog has wrong kind")
	}
	for _, e := range c.All() {
		if e.Kind != Movie {
			t.Fatalf("entity %q has kind %v", e.Canonical, e.Kind)
		}
	}
}

func TestCamerasKind(t *testing.T) {
	c := mustCameras(t)
	if c.Kind() != Camera {
		t.Fatal("camera catalog has wrong kind")
	}
}

func TestKindString(t *testing.T) {
	if Movie.String() != "movie" || Camera.String() != "camera" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestIDsAreDense(t *testing.T) {
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		for i, e := range c.All() {
			if e.ID != i {
				t.Fatalf("entity %q has ID %d at position %d", e.Canonical, e.ID, i)
			}
			if c.ByID(i) != e {
				t.Fatalf("ByID(%d) mismatch", i)
			}
		}
	}
}

func TestByIDOutOfRange(t *testing.T) {
	c := mustMovies(t)
	if c.ByID(-1) != nil || c.ByID(c.Len()) != nil {
		t.Fatal("out-of-range ByID should return nil")
	}
}

func TestByNormRoundTrip(t *testing.T) {
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		for _, e := range c.All() {
			if got := c.ByNorm(e.Norm()); got != e {
				t.Fatalf("ByNorm(%q) returned wrong entity", e.Norm())
			}
		}
	}
}

func TestByNormMiss(t *testing.T) {
	if mustMovies(t).ByNorm("definitely not a movie title") != nil {
		t.Fatal("ByNorm should miss unknown strings")
	}
}

func TestNoDuplicateNormalizedNames(t *testing.T) {
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		seen := map[string]string{}
		for _, e := range c.All() {
			n := e.Norm()
			if prev, dup := seen[n]; dup {
				t.Fatalf("%q and %q collide on %q", prev, e.Canonical, n)
			}
			seen[n] = e.Canonical
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		sum := 0.0
		for _, e := range c.All() {
			if e.Weight < 0 {
				t.Fatalf("%q has negative weight", e.Canonical)
			}
			sum += e.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v weights sum to %v", c.Kind(), sum)
		}
	}
}

func TestMoviesHaveNoDeadTail(t *testing.T) {
	for _, e := range mustMovies(t).All() {
		if e.Weight == 0 {
			t.Fatalf("movie %q has zero weight; movies must all attract queries", e.Canonical)
		}
	}
}

func TestCamerasDeadTailFraction(t *testing.T) {
	c := mustCameras(t)
	dead := 0
	for _, e := range c.All() {
		if e.Weight == 0 {
			dead++
		}
	}
	frac := float64(dead) / float64(c.Len())
	if frac < 0.10 || frac > 0.16 {
		t.Fatalf("dead camera fraction %.3f outside [0.10, 0.16]", frac)
	}
}

func TestPopularityRanksArePermutation(t *testing.T) {
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		seen := make([]bool, c.Len())
		for _, e := range c.All() {
			if e.PopRank < 0 || e.PopRank >= c.Len() || seen[e.PopRank] {
				t.Fatalf("%v: PopRank %d invalid/duplicated", c.Kind(), e.PopRank)
			}
			seen[e.PopRank] = true
		}
	}
}

func TestPopularityWeightMonotone(t *testing.T) {
	// Weight must be non-increasing in rank (dead tail all-zero).
	for _, c := range []*Catalog{mustMovies(t), mustCameras(t)} {
		byRank := c.SortByPopularity()
		for i := 1; i < len(byRank); i++ {
			if byRank[i].Weight > byRank[i-1].Weight+1e-12 {
				t.Fatalf("%v: weight increases from rank %d to %d", c.Kind(), i-1, i)
			}
		}
	}
}

func TestSortByPopularityDoesNotMutate(t *testing.T) {
	c := mustMovies(t)
	_ = c.SortByPopularity()
	for i, e := range c.All() {
		if e.ID != i {
			t.Fatal("SortByPopularity mutated catalog order")
		}
	}
}

func TestMovieZipfHead(t *testing.T) {
	c := mustMovies(t)
	top := c.SortByPopularity()[0]
	if top.Canonical != "The Dark Knight" {
		t.Fatalf("most popular 2008 movie is %q, want The Dark Knight", top.Canonical)
	}
	if top.Weight < 0.02 {
		t.Fatalf("head movie weight %.4f implausibly small", top.Weight)
	}
}

func TestCamerasDSLRsAreHead(t *testing.T) {
	// Every tier-0 DSLR body should rank in the top half.
	c := mustCameras(t)
	for _, e := range c.All() {
		if e.Line == "EOS" && e.PopRank >= c.Len()/2 {
			t.Fatalf("EOS body %q has tail rank %d", e.Canonical, e.PopRank)
		}
	}
}

func TestCameraFieldsPopulated(t *testing.T) {
	for _, e := range mustCameras(t).All() {
		if e.Brand == "" || e.Model == "" {
			t.Fatalf("camera %q missing brand/model metadata", e.Canonical)
		}
		if !strings.HasPrefix(e.Canonical, e.Brand) {
			t.Fatalf("camera canonical %q does not start with brand %q", e.Canonical, e.Brand)
		}
	}
}

func TestMovieSequelMetadataConsistent(t *testing.T) {
	for _, e := range mustMovies(t).All() {
		if e.Sequel > 0 && e.Franchise == "" {
			t.Fatalf("movie %q has sequel number but no franchise", e.Canonical)
		}
		if e.Subtitle != "" && !strings.Contains(textnorm.Normalize(e.Canonical), textnorm.Normalize(e.Subtitle)) {
			t.Fatalf("movie %q subtitle %q not contained in title", e.Canonical, e.Subtitle)
		}
	}
}

func TestKnownNicknamesPresent(t *testing.T) {
	cams := mustCameras(t)
	rebel := cams.ByNorm("canon eos 350d")
	if rebel == nil {
		t.Fatal("Canon EOS 350D missing from catalog")
	}
	found := false
	for _, n := range rebel.Nicknames {
		if n == "digital rebel xt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EOS 350D nicknames = %v, want digital rebel xt", rebel.Nicknames)
	}

	movies := mustMovies(t)
	indy := movies.ByNorm("indiana jones and the kingdom of the crystal skull")
	if indy == nil {
		t.Fatal("Indiana Jones 4 missing from catalog")
	}
	if indy.Sequel != 4 || indy.Franchise != "Indiana Jones" {
		t.Fatalf("Indiana Jones metadata wrong: %+v", indy)
	}
}

func TestCanonicalsMatchesCatalog(t *testing.T) {
	c := mustMovies(t)
	cs := c.Canonicals()
	if len(cs) != c.Len() {
		t.Fatal("Canonicals length mismatch")
	}
	for i, s := range cs {
		if s != c.ByID(i).Canonical {
			t.Fatal("Canonicals order mismatch")
		}
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog(Movie, []*Entity{
		{Canonical: "Same Title"},
		{Canonical: "same   title!"},
	})
	if err == nil {
		t.Fatal("duplicate normalized canonicals should be rejected")
	}
}

func TestNewCatalogRejectsEmptyNorm(t *testing.T) {
	_, err := NewCatalog(Movie, []*Entity{{Canonical: "!!!"}})
	if err == nil {
		t.Fatal("empty-normalizing canonical should be rejected")
	}
}

func mustSoftware(t *testing.T) *Catalog {
	t.Helper()
	c, err := Software2008()
	if err != nil {
		t.Fatalf("Software2008: %v", err)
	}
	return c
}

func TestSoftwareCount(t *testing.T) {
	if got := mustSoftware(t).Len(); got != SoftwareCount {
		t.Fatalf("software catalog has %d entries, want %d", got, SoftwareCount)
	}
}

func TestSoftwareKindAndFields(t *testing.T) {
	c := mustSoftware(t)
	if c.Kind() != Software {
		t.Fatal("wrong kind")
	}
	if Software.String() != "software" {
		t.Fatal("Kind string wrong")
	}
	for _, e := range c.All() {
		if e.Brand == "" {
			t.Fatalf("software %q missing vendor", e.Canonical)
		}
		if e.Franchise == "" {
			t.Fatalf("software %q missing product line", e.Canonical)
		}
	}
}

func TestSoftwareNoDeadTail(t *testing.T) {
	for _, e := range mustSoftware(t).All() {
		if e.Weight == 0 {
			t.Fatalf("software %q has zero weight", e.Canonical)
		}
	}
}

func TestSoftwareLeopardEntry(t *testing.T) {
	c := mustSoftware(t)
	e := c.ByNorm("apple mac os x 10 5")
	if e == nil {
		t.Fatal("Mac OS X 10.5 missing")
	}
	found := false
	for _, n := range e.Nicknames {
		if n == "leopard" {
			found = true
		}
	}
	if !found {
		t.Fatalf("leopard codename missing: %v", e.Nicknames)
	}
}

func TestSoftwareNormsUnique(t *testing.T) {
	c := mustSoftware(t)
	seen := map[string]bool{}
	for _, e := range c.All() {
		n := e.Norm()
		if seen[n] {
			t.Fatalf("duplicate norm %q", n)
		}
		seen[n] = true
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a := mustCameras(t)
	b := mustCameras(t)
	for i := range a.All() {
		ea, eb := a.ByID(i), b.ByID(i)
		if ea.Canonical != eb.Canonical || ea.PopRank != eb.PopRank || ea.Weight != eb.Weight {
			t.Fatalf("camera catalog not deterministic at %d", i)
		}
	}
}
