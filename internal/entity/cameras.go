package entity

import (
	"fmt"
	"sort"

	"websyn/internal/rng"
	"websyn/internal/textnorm"
)

// CameraCount is the size of the D2 catalog, matching the paper's 882
// canonical camera names crawled from MSN Shopping.
const CameraCount = 882

// cameraSeries describes one product line. A series contributes either an
// explicit list of model codes or a generated numeric run
// (pattern/start/step/count, with an optional suffix like " IS" applied to
// every suffixEvery-th model — mirroring how real lines sprinkle stabilized
// variants through a numeric range).
//
// tier is the popularity tier of the line: 0 = enthusiast favourites (DSLRs,
// flagship compacts) that dominate query volume, 3 = feed filler nobody
// searches for. Tiers anchor the popularity permutation, which in turn
// drives the Zipf weights and the dead tail — the structural reason the
// camera rows of Table I look so different from the movie rows.
type cameraSeries struct {
	brand       string
	line        string
	pattern     string // printf pattern with one %d, "" when explicit-only
	start       int
	step        int
	count       int
	suffix      string
	suffixEvery int
	explicit    []string
	tier        int
}

var cameraSeriesTable = []cameraSeries{
	// ----- Canon -----
	{brand: "Canon", line: "EOS", tier: 0, explicit: []string{
		"300D", "350D", "400D", "450D", "1000D", "20D", "30D", "40D", "50D",
		"5D", "5D Mark II", "1D Mark III", "1Ds Mark II", "1Ds Mark III",
	}},
	{brand: "Canon", line: "PowerShot", pattern: "A%d", start: 430, step: 10, count: 60, suffix: " IS", suffixEvery: 4, tier: 2},
	{brand: "Canon", line: "PowerShot", pattern: "SD%d", start: 600, step: 25, count: 26, suffix: " IS", suffixEvery: 3, tier: 1},
	{brand: "Canon", line: "PowerShot", tier: 1, explicit: []string{
		"SX1 IS", "SX10 IS", "SX100 IS", "SX110 IS", "G6", "G7", "G9", "G10",
		"S60", "S70", "S80", "TX1",
	}},
	// ----- Nikon -----
	{brand: "Nikon", line: "", tier: 0, explicit: []string{
		"D40", "D40X", "D50", "D60", "D70s", "D80", "D90", "D200", "D300",
		"D700", "D3", "D3X",
	}},
	{brand: "Nikon", line: "Coolpix", pattern: "L%d", start: 1, step: 1, count: 24, tier: 2},
	{brand: "Nikon", line: "Coolpix", pattern: "P%d", start: 50, step: 10, count: 20, tier: 1},
	{brand: "Nikon", line: "Coolpix", tier: 1, explicit: []string{
		"P5000", "P5100", "P6000", "P1", "P2", "P3",
	}},
	{brand: "Nikon", line: "Coolpix", pattern: "S%d", start: 200, step: 10, count: 40, tier: 2},
	// ----- Sony -----
	{brand: "Sony", line: "Alpha", tier: 0, explicit: []string{
		"DSLR-A100", "DSLR-A200", "DSLR-A300", "DSLR-A350", "DSLR-A700", "DSLR-A900",
	}},
	{brand: "Sony", line: "Cyber-shot", pattern: "DSC-W%d", start: 30, step: 10, count: 50, tier: 1},
	{brand: "Sony", line: "Cyber-shot", tier: 1, explicit: []string{
		"DSC-T9", "DSC-T10", "DSC-T20", "DSC-T30", "DSC-T50", "DSC-T70",
		"DSC-T77", "DSC-T100", "DSC-T200", "DSC-T300", "DSC-T500", "DSC-T700",
		"DSC-T2", "DSC-T5",
	}},
	{brand: "Sony", line: "Cyber-shot", tier: 1, explicit: []string{
		"DSC-H1", "DSC-H2", "DSC-H3", "DSC-H5", "DSC-H7", "DSC-H9", "DSC-H10", "DSC-H50",
	}},
	{brand: "Sony", line: "Cyber-shot", pattern: "DSC-S%d", start: 600, step: 25, count: 16, tier: 2},
	// ----- Olympus -----
	{brand: "Olympus", line: "", tier: 0, explicit: []string{
		"E-330", "E-400", "E-410", "E-420", "E-500", "E-510", "E-520",
		"E-1", "E-3", "E-30",
	}},
	{brand: "Olympus", line: "Stylus", pattern: "%d", start: 700, step: 10, count: 36, suffix: " SW", suffixEvery: 5, tier: 2},
	{brand: "Olympus", line: "FE", pattern: "FE-%d", start: 100, step: 10, count: 34, tier: 3},
	{brand: "Olympus", line: "", tier: 2, explicit: []string{
		"SP-310", "SP-320", "SP-350", "SP-500 UZ", "SP-510 UZ", "SP-550 UZ",
		"SP-560 UZ", "SP-570 UZ",
	}},
	// ----- Panasonic -----
	{brand: "Panasonic", line: "Lumix", tier: 0, explicit: []string{
		"DMC-FZ3", "DMC-FZ4", "DMC-FZ5", "DMC-FZ7", "DMC-FZ8", "DMC-FZ18",
		"DMC-FZ28", "DMC-FZ30", "DMC-FZ50", "DMC-G1",
	}},
	{brand: "Panasonic", line: "Lumix", tier: 1, explicit: []string{
		"DMC-TZ1", "DMC-TZ2", "DMC-TZ3", "DMC-TZ4", "DMC-TZ5", "DMC-TZ50",
		"DMC-LX1", "DMC-LX2", "DMC-LX3",
	}},
	{brand: "Panasonic", line: "Lumix", pattern: "DMC-FX%d", start: 30, step: 5, count: 24, tier: 2},
	{brand: "Panasonic", line: "Lumix", pattern: "DMC-FS%d", start: 3, step: 2, count: 15, tier: 3},
	{brand: "Panasonic", line: "Lumix", tier: 2, explicit: []string{
		"DMC-LZ2", "DMC-LZ3", "DMC-LZ5", "DMC-LZ7", "DMC-LZ8",
		"DMC-LS2", "DMC-LS60", "DMC-LS75", "DMC-LS80",
	}},
	// ----- Fujifilm -----
	{brand: "Fujifilm", line: "FinePix", pattern: "A%d", start: 100, step: 50, count: 24, tier: 3},
	{brand: "Fujifilm", line: "FinePix", tier: 1, explicit: []string{
		"F10", "F11", "F20", "F30", "F31fd", "F40fd", "F45fd", "F47fd",
		"F50fd", "F60fd", "F100fd", "F480",
	}},
	{brand: "Fujifilm", line: "FinePix", tier: 1, explicit: []string{
		"S5200", "S5700", "S5800", "S6000fd", "S6500fd", "S700", "S8000fd",
		"S8100fd", "S100FS", "S1000fd", "S2000HD", "S9600",
	}},
	{brand: "Fujifilm", line: "FinePix", tier: 2, explicit: []string{
		"Z1", "Z2", "Z3", "Z5fd", "Z10fd", "Z20fd", "Z100fd", "Z200fd",
		"Z30", "Z33WP", "Z50fd", "Z60fd", "Z70fd", "Z80fd",
	}},
	{brand: "Fujifilm", line: "FinePix", tier: 3, explicit: []string{
		"J10", "J12", "J15fd", "J50", "J100", "J110w", "J120", "J150w", "J20", "J25",
	}},
	// ----- Kodak -----
	{brand: "Kodak", line: "EasyShare", pattern: "C%d", start: 300, step: 15, count: 30, tier: 3},
	{brand: "Kodak", line: "EasyShare", tier: 2, explicit: []string{
		"M753", "M763", "M853", "M863", "M883", "M893 IS", "M1033", "M1073 IS",
		"M320", "M340", "M341", "M380", "M420", "M1063",
	}},
	{brand: "Kodak", line: "EasyShare", tier: 1, explicit: []string{
		"Z612", "Z650", "Z700", "Z710", "Z712 IS", "Z740", "Z812 IS", "Z885",
		"Z1012 IS", "Z1085 IS",
	}},
	{brand: "Kodak", line: "EasyShare", tier: 2, explicit: []string{
		"V530", "V550", "V570", "V603", "V705", "V803",
	}},
	// ----- Casio -----
	{brand: "Casio", line: "Exilim", pattern: "EX-Z%d", start: 40, step: 10, count: 30, tier: 2},
	{brand: "Casio", line: "Exilim", tier: 2, explicit: []string{
		"EX-S2", "EX-S3", "EX-S10", "EX-S100", "EX-S500", "EX-S600",
		"EX-S770", "EX-S880", "EX-S5", "EX-S12",
	}},
	{brand: "Casio", line: "Exilim", tier: 1, explicit: []string{
		"EX-F1", "EX-FH20", "EX-V7", "EX-V8",
	}},
	// ----- Pentax -----
	{brand: "Pentax", line: "", tier: 0, explicit: []string{
		"K100D", "K100D Super", "K110D", "K10D", "K20D", "K200D", "K2000", "ist DS2",
	}},
	{brand: "Pentax", line: "Optio", tier: 2, explicit: []string{
		"A10", "A20", "A30", "M10", "M20", "M30", "M40",
		"W10", "W20", "W30", "W60", "WPi",
	}},
	{brand: "Pentax", line: "Optio", pattern: "E%d", start: 10, step: 10, count: 6, tier: 3},
	{brand: "Pentax", line: "Optio", tier: 2, explicit: []string{
		"S5i", "S5n", "S6", "S7", "S10", "S12", "S40", "S45", "S50", "S55",
	}},
	// ----- Samsung -----
	{brand: "Samsung", line: "Digimax", tier: 2, explicit: []string{
		"S500", "S600", "S700", "S730", "S760", "S850", "S1050",
	}},
	{brand: "Samsung", line: "Digimax", pattern: "L%d", start: 100, step: 10, count: 20, tier: 3},
	{brand: "Samsung", line: "", tier: 2, explicit: []string{
		"NV3", "NV7 OPS", "NV8", "NV9", "NV10", "NV15", "NV20", "NV24 HD",
	}},
	{brand: "Samsung", line: "", tier: 1, explicit: []string{
		"GX-10", "GX-20", "i7", "i8", "i85",
	}},
	// ----- Leica -----
	{brand: "Leica", line: "", tier: 1, explicit: []string{
		"C-LUX 1", "C-LUX 2", "C-LUX 3", "D-LUX 2", "D-LUX 3", "D-LUX 4",
		"V-LUX 1", "M8",
	}},
	// ----- Ricoh -----
	{brand: "Ricoh", line: "Caplio", tier: 2, explicit: []string{
		"R4", "R5", "R6", "R7", "R8", "R10", "GX100", "GX200",
		"GR Digital", "GR Digital II",
	}},
	// ----- Sigma -----
	{brand: "Sigma", line: "", tier: 1, explicit: []string{"DP1", "SD14"}},
	// ----- GE -----
	{brand: "GE", line: "", tier: 3, explicit: []string{
		"A730", "A830", "A950", "E840s", "E1030", "E1240",
		"A1050", "E850", "E1050 TW", "E1235", "G1", "X3",
	}},
	// ----- HP -----
	{brand: "HP", line: "Photosmart", tier: 3, explicit: []string{
		"M425", "M447", "M527", "M547", "M637", "M737", "R742", "R937",
		"M627", "M727", "R725", "R727", "R827", "R847",
	}},
	// ----- Sanyo -----
	{brand: "Sanyo", line: "Xacti", pattern: "VPC-S%d", start: 600, step: 10, count: 30, tier: 3},
	// ----- BenQ -----
	{brand: "BenQ", line: "DC", pattern: "C%d", start: 500, step: 20, count: 25, tier: 3},
	// ----- Polaroid -----
	{brand: "Polaroid", line: "", pattern: "i%d", start: 530, step: 30, count: 18, tier: 3},
	// ----- Kyocera -----
	{brand: "Kyocera", line: "Finecam", tier: 3, explicit: []string{
		"SL300R", "SL400R", "S3R", "S5R", "M400R", "M410R",
		"L3V", "L4V", "SL25", "SL30", "EZ4033", "EZ4050",
	}},
	// ----- Konica Minolta -----
	{brand: "Konica Minolta", line: "DiMAGE", tier: 2, explicit: []string{
		"X1", "X50", "X60", "Z2", "Z3", "Z5", "Z6", "Z10", "Z20",
		"A2", "A200", "E500", "G600",
	}},
	// ----- Vivitar (filler series: runtime-extended/truncated to hit 882) -----
	{brand: "Vivitar", line: "ViviCam", pattern: "%d", start: 3700, step: 15, count: 40, tier: 3},
}

// fillerIndex points at the series whose count is adjusted at build time so
// the catalog lands on exactly CameraCount entries. It must be the last
// entry and must be a numeric-pattern series.
var fillerIndex = len(cameraSeriesTable) - 1

// cameraNicknames maps normalized canonical names to codified market
// nicknames — regional or marketing names with zero textual overlap with the
// canonical string. "Canon EOS 350D" = "Digital Rebel XT" is the paper's own
// running example.
var cameraNicknames = map[string][]string{
	"canon eos 300d":         {"digital rebel", "kiss digital"},
	"canon eos 350d":         {"digital rebel xt", "rebel xt", "kiss digital n"},
	"canon eos 400d":         {"digital rebel xti", "rebel xti", "kiss digital x"},
	"canon eos 450d":         {"rebel xsi", "kiss x2"},
	"canon eos 1000d":        {"rebel xs", "kiss f"},
	"pentax k2000":           {"pentax k m"},
	"olympus e 410":          {"evolt e410"},
	"olympus e 510":          {"evolt e510"},
	"sony alpha dslr a100":   {"sony alpha 100"},
	"sony alpha dslr a700":   {"sony alpha 700"},
	"panasonic lumix dmc g1": {"panasonic g1 micro four thirds"},
	"nikon d40":              {"nikon d40 kit"},
	"leica d lux 3":          {"dlux3"},
	"sigma dp1":              {"sigma compact foveon"},
	"fujifilm finepix f31fd": {"fuji f31"},
}

// seriesModels expands one series spec into its model code list.
func (cs *cameraSeries) seriesModels() []string {
	models := append([]string(nil), cs.explicit...)
	if cs.pattern != "" {
		for i := 0; i < cs.count; i++ {
			m := fmt.Sprintf(cs.pattern, cs.start+i*cs.step)
			if cs.suffix != "" && cs.suffixEvery > 0 && (i+1)%cs.suffixEvery == 0 {
				m += cs.suffix
			}
			models = append(models, m)
		}
	}
	return models
}

// canonicalCameraName joins brand, line and model into the canonical feed
// string.
func canonicalCameraName(brand, line, model string) string {
	if line == "" {
		return brand + " " + model
	}
	return brand + " " + line + " " + model
}

// cameraPopularitySeed fixes the deterministic jitter stream used to break
// ties inside popularity tiers. Changing it reshuffles which tail cameras
// are "dead" but not any aggregate statistic.
const cameraPopularitySeed = 0x0C0FFEE

// Cameras2008 builds the D2 catalog: exactly CameraCount canonical camera
// names. Popularity ranks are assigned by tier (DSLR lines first, feed
// filler last) with deterministic within-tier jitter, then weighted by a
// steep Zipf with a dead tail — reproducing the head/tail contrast that
// makes Table I's camera rows collapse for the Wikipedia and random-walk
// baselines.
func Cameras2008() (*Catalog, error) {
	type protoCam struct {
		brand, line, model string
		tier               int
	}
	var protos []protoCam
	for i, cs := range cameraSeriesTable {
		if i == fillerIndex {
			continue // handled after the count is known
		}
		for _, m := range cs.seriesModels() {
			protos = append(protos, protoCam{cs.brand, cs.line, m, cs.tier})
		}
	}
	filler := cameraSeriesTable[fillerIndex]
	if filler.pattern == "" {
		return nil, fmt.Errorf("entity: filler series must be numeric")
	}
	need := CameraCount - len(protos)
	if need < 0 {
		return nil, fmt.Errorf("entity: camera table overfull by %d before filler", -need)
	}
	filler.count = need
	for _, m := range filler.seriesModels() {
		protos = append(protos, protoCam{filler.brand, filler.line, m, filler.tier})
	}
	if len(protos) != CameraCount {
		return nil, fmt.Errorf("entity: camera catalog has %d entries, want %d", len(protos), CameraCount)
	}

	entities := make([]*Entity, len(protos))
	for i, p := range protos {
		canon := canonicalCameraName(p.brand, p.line, p.model)
		e := &Entity{
			Canonical: canon,
			Brand:     p.brand,
			Line:      p.line,
			Model:     p.model,
		}
		if nick, ok := cameraNicknames[textnorm.Normalize(canon)]; ok {
			e.Nicknames = append([]string(nil), nick...)
		}
		deriveCameraAttrs(e, p.tier)
		entities[i] = e
	}

	// Popularity: score = tier base + jitter, rank by descending score.
	src := rng.New(cameraPopularitySeed)
	type scored struct {
		idx   int
		score float64
	}
	scoredList := make([]scored, len(protos))
	tierBase := []float64{3.0, 2.0, 1.0, 0.0}
	for i, p := range protos {
		scoredList[i] = scored{idx: i, score: tierBase[p.tier] + 0.9*src.Float64()}
	}
	sort.Slice(scoredList, func(a, b int) bool {
		if scoredList[a].score != scoredList[b].score {
			return scoredList[a].score > scoredList[b].score
		}
		return scoredList[a].idx < scoredList[b].idx
	})
	ranks := make([]int, len(protos))
	for rank, s := range scoredList {
		ranks[s.idx] = rank
	}
	// Steep Zipf + 13% dead tail: matches the 87% "Us" hit ratio band.
	assignPopularity(entities, ranks, 1.02, 0.13)
	return NewCatalog(Camera, entities)
}
