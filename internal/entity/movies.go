package entity

import "fmt"

// movieSpec is the compact literal form of a D1 entry. The list below covers
// 100 wide-release 2008 movies roughly in box-office order, which doubles as
// the popularity rank (rank 0 = The Dark Knight). Franchise/sequel/subtitle
// metadata drives the alias model: sequels generate numeral-swap synonyms,
// subtitles generate subtitle-drop synonyms, franchises generate hypernyms.
// Nicknames are informal names that cannot be derived from the title text —
// the class of synonym the paper's introduction calls hopeless for substring
// matching.
type movieSpec struct {
	title     string
	franchise string
	sequel    int
	subtitle  string
	nicknames []string
}

var movies2008 = []movieSpec{
	{title: "The Dark Knight", franchise: "Batman", nicknames: []string{"batman dark knight", "tdk", "batman 2008"}},
	{title: "Iron Man", nicknames: []string{"ironman movie", "iron man 2008"}},
	{title: "Indiana Jones and the Kingdom of the Crystal Skull", franchise: "Indiana Jones", sequel: 4, subtitle: "Kingdom of the Crystal Skull", nicknames: []string{"indy 4", "indiana jones iv"}},
	{title: "Hancock", nicknames: []string{"hancock will smith"}},
	{title: "WALL-E", nicknames: []string{"walle", "wall e pixar"}},
	{title: "Kung Fu Panda", nicknames: []string{"kfp"}},
	{title: "Twilight", nicknames: []string{"twilight movie", "twilight 2008"}},
	{title: "Madagascar: Escape 2 Africa", franchise: "Madagascar", sequel: 2, subtitle: "Escape 2 Africa", nicknames: []string{"madagascar 2"}},
	{title: "Quantum of Solace", franchise: "James Bond", sequel: 22, nicknames: []string{"bond 22", "james bond quantum", "new bond movie"}},
	{title: "Dr. Seuss' Horton Hears a Who!", subtitle: "", nicknames: []string{"horton hears a who", "horton movie"}},
	{title: "Sex and the City", nicknames: []string{"satc movie", "sex and the city movie"}},
	{title: "Gran Torino", nicknames: []string{"gran torino eastwood"}},
	{title: "Mamma Mia!", nicknames: []string{"mamma mia movie", "mama mia"}},
	{title: "Marley & Me", nicknames: []string{"marley and me"}},
	{title: "The Chronicles of Narnia: Prince Caspian", franchise: "Chronicles of Narnia", sequel: 2, subtitle: "Prince Caspian", nicknames: []string{"narnia 2"}},
	{title: "Slumdog Millionaire", nicknames: []string{"slumdog"}},
	{title: "The Incredible Hulk", franchise: "Hulk", nicknames: []string{"hulk 2008", "hulk 2"}},
	{title: "Wanted", nicknames: []string{"wanted movie"}},
	{title: "Get Smart", nicknames: []string{"get smart movie"}},
	{title: "The Curious Case of Benjamin Button", nicknames: []string{"benjamin button"}},
	{title: "The Mummy: Tomb of the Dragon Emperor", franchise: "The Mummy", sequel: 3, subtitle: "Tomb of the Dragon Emperor", nicknames: []string{"mummy 3"}},
	{title: "Bolt", nicknames: []string{"bolt disney"}},
	{title: "Tropic Thunder", nicknames: []string{"tropic thunder movie"}},
	{title: "Bedtime Stories", nicknames: []string{"bedtime stories sandler"}},
	{title: "Journey to the Center of the Earth", nicknames: []string{"journey 3d"}},
	{title: "You Don't Mess with the Zohan", nicknames: []string{"zohan"}},
	{title: "Valkyrie", nicknames: []string{"valkyrie cruise"}},
	{title: "Yes Man", nicknames: []string{"yes man carrey"}},
	{title: "Step Brothers", nicknames: []string{"stepbrothers"}},
	{title: "Eagle Eye", nicknames: []string{"eagle eye movie"}},
	{title: "The Day the Earth Stood Still", nicknames: []string{"day earth stood still remake"}},
	{title: "Cloverfield", nicknames: []string{"cloverfield monster movie"}},
	{title: "27 Dresses", nicknames: []string{"27 dresses movie"}},
	{title: "Jumper", nicknames: []string{"jumper movie"}},
	{title: "Beverly Hills Chihuahua", nicknames: []string{"chihuahua movie"}},
	{title: "Pineapple Express", nicknames: []string{"pineapple express movie"}},
	{title: "Hellboy II: The Golden Army", franchise: "Hellboy", sequel: 2, subtitle: "The Golden Army", nicknames: []string{"hellboy 2"}},
	{title: "The Spiderwick Chronicles", nicknames: []string{"spiderwick"}},
	{title: "Vantage Point", nicknames: []string{"vantage point movie"}},
	{title: "Fool's Gold", nicknames: []string{"fools gold movie"}},
	{title: "The Happening", nicknames: []string{"the happening shyamalan"}},
	{title: "10,000 BC", nicknames: []string{"10000 bc"}},
	{title: "Four Christmases", nicknames: []string{"4 christmases"}},
	{title: "High School Musical 3: Senior Year", franchise: "High School Musical", sequel: 3, subtitle: "Senior Year", nicknames: []string{"hsm3", "hsm 3"}},
	{title: "Changeling", nicknames: []string{"changeling jolie"}},
	{title: "Baby Mama", nicknames: []string{"baby mama movie"}},
	{title: "Forgetting Sarah Marshall", nicknames: []string{"sarah marshall movie"}},
	{title: "21", nicknames: []string{"21 movie", "21 blackjack movie"}},
	{title: "The Tale of Despereaux", nicknames: []string{"despereaux"}},
	{title: "Seven Pounds", nicknames: []string{"7 pounds"}},
	{title: "The Strangers", nicknames: []string{"the strangers horror"}},
	{title: "Nim's Island", nicknames: []string{"nims island"}},
	{title: "Nights in Rodanthe", nicknames: []string{"rodanthe"}},
	{title: "Burn After Reading", nicknames: []string{"burn after reading coen"}},
	{title: "What Happens in Vegas", nicknames: []string{"what happens in vegas movie"}},
	{title: "Body of Lies", nicknames: []string{"body of lies dicaprio"}},
	{title: "The House Bunny", nicknames: []string{"house bunny"}},
	{title: "Definitely, Maybe", nicknames: []string{"definitely maybe movie"}},
	{title: "Max Payne", nicknames: []string{"max payne movie"}},
	{title: "Made of Honor", nicknames: []string{"made of honour"}},
	{title: "Rambo", franchise: "Rambo", sequel: 4, nicknames: []string{"rambo 4", "rambo iv"}},
	{title: "Drillbit Taylor", nicknames: []string{"drillbit"}},
	{title: "Speed Racer", nicknames: []string{"speed racer movie"}},
	{title: "The Love Guru", nicknames: []string{"love guru"}},
	{title: "Meet the Spartans", nicknames: []string{"spartans spoof"}},
	{title: "Street Kings", nicknames: []string{"street kings movie"}},
	{title: "Untraceable", nicknames: []string{"untraceable movie"}},
	{title: "Semi-Pro", nicknames: []string{"semi pro ferrell"}},
	{title: "The Eye", nicknames: []string{"the eye remake"}},
	{title: "Leatherheads", nicknames: []string{"leatherheads movie"}},
	{title: "Prom Night", nicknames: []string{"prom night remake"}},
	{title: "The Forbidden Kingdom", nicknames: []string{"forbidden kingdom jackie chan"}},
	{title: "Harold & Kumar Escape from Guantanamo Bay", franchise: "Harold and Kumar", sequel: 2, nicknames: []string{"harold and kumar 2"}},
	{title: "Mirrors", nicknames: []string{"mirrors horror movie"}},
	{title: "Bangkok Dangerous", nicknames: []string{"bangkok dangerous cage"}},
	{title: "Lakeview Terrace", nicknames: []string{"lakeview terrace movie"}},
	{title: "Saw V", franchise: "Saw", sequel: 5, nicknames: []string{"saw 5"}},
	{title: "The Women", nicknames: []string{"the women 2008"}},
	{title: "Ghost Town", nicknames: []string{"ghost town gervais"}},
	{title: "Righteous Kill", nicknames: []string{"righteous kill deniro"}},
	{title: "Disaster Movie", nicknames: []string{"disaster movie spoof"}},
	{title: "Star Wars: The Clone Wars", franchise: "Star Wars", subtitle: "The Clone Wars", nicknames: []string{"clone wars movie"}},
	{title: "Swing Vote", nicknames: []string{"swing vote costner"}},
	{title: "The Sisterhood of the Traveling Pants 2", franchise: "Sisterhood of the Traveling Pants", sequel: 2, nicknames: []string{"traveling pants 2"}},
	{title: "Stop-Loss", nicknames: []string{"stop loss movie"}},
	{title: "The Bank Job", nicknames: []string{"bank job statham"}},
	{title: "Doomsday", nicknames: []string{"doomsday 2008"}},
	{title: "College Road Trip", nicknames: []string{"college road trip movie"}},
	{title: "Never Back Down", nicknames: []string{"never back down movie"}},
	{title: "Shutter", nicknames: []string{"shutter remake"}},
	{title: "Superhero Movie", nicknames: []string{"superhero spoof"}},
	{title: "Nick and Norah's Infinite Playlist", nicknames: []string{"nick and norah"}},
	{title: "The Duchess", nicknames: []string{"the duchess knightley"}},
	{title: "City of Ember", nicknames: []string{"city of ember movie"}},
	{title: "Quarantine", nicknames: []string{"quarantine horror"}},
	{title: "Appaloosa", nicknames: []string{"appaloosa western"}},
	{title: "The X-Files: I Want to Believe", franchise: "X-Files", sequel: 2, subtitle: "I Want to Believe", nicknames: []string{"x files 2", "xfiles movie"}},
	{title: "Zack and Miri Make a Porno", nicknames: []string{"zack and miri"}},
	{title: "Role Models", nicknames: []string{"role models movie"}},
	{title: "Transporter 3", franchise: "Transporter", sequel: 3, nicknames: []string{"transporter iii"}},
}

// MovieCount is the size of the D1 catalog, matching the paper.
const MovieCount = 100

// Movies2008 builds the D1 catalog: 100 wide-release 2008 movie titles with
// popularity equal to box-office order and Zipf-distributed query-volume
// weights. No movie is in the dead tail: every top-100 movie attracts
// queries, which is why every baseline achieves a high hit ratio on D1
// (paper Table I, movies rows).
func Movies2008() (*Catalog, error) {
	if len(movies2008) != MovieCount {
		return nil, fmt.Errorf("entity: movie table has %d entries, want %d", len(movies2008), MovieCount)
	}
	entities := make([]*Entity, len(movies2008))
	ranks := make([]int, len(movies2008))
	for i, m := range movies2008 {
		entities[i] = &Entity{
			Canonical: m.title,
			Franchise: m.franchise,
			Sequel:    m.sequel,
			Subtitle:  m.subtitle,
			Nicknames: append([]string(nil), m.nicknames...),
			Year:      2008,
			Genre:     movieGenre(m.title, i),
		}
		ranks[i] = i // table order == popularity order
	}
	// Movies: moderately skewed Zipf, no dead tail.
	assignPopularity(entities, ranks, 0.85, 0)
	return NewCatalog(Movie, entities)
}
