package entity

import "websyn/internal/textnorm"

// Attribute-column population.
//
// The rewrite stage (internal/rewrite) mines per-domain vocabularies from
// the catalogs' structured columns: numeric columns become range/band
// predicates ("under $500", "cheap"), categorical columns become value
// dictionaries ("adventure", "canon"). Movies carry a curated genre plus
// the release year; cameras carry deterministic price/megapixels/zoom
// figures derived from tier and model so the numeric distributions are
// stable across builds without hand-maintaining 882 rows.

// movieGenres maps normalized titles of prominent D1 movies to a genre.
// Values are single normalized tokens so the rewrite parser matches them
// with one-token windows. Titles absent here fall back to genreCycle.
var movieGenres = map[string]string{
	"the dark knight": "action",
	"iron man":        "action",
	"indiana jones and the kingdom of the crystal skull": "adventure",
	"hancock":                     "action",
	"wall e":                      "animation",
	"kung fu panda":               "animation",
	"twilight":                    "romance",
	"madagascar escape 2 africa":  "animation",
	"quantum of solace":           "action",
	"dr seuss horton hears a who": "animation",
	"sex and the city":            "comedy",
	"gran torino":                 "drama",
	"mamma mia":                   "musical",
	"marley me":                   "comedy",
	"the chronicles of narnia prince caspian": "fantasy",
	"slumdog millionaire":                     "drama",
	"the incredible hulk":                     "action",
	"wanted":                                  "action",
	"get smart":                               "comedy",
	"the curious case of benjamin button":     "drama",
	"the mummy tomb of the dragon emperor":    "adventure",
	"bolt":                                    "animation",
	"tropic thunder":                          "comedy",
	"bedtime stories":                         "comedy",
	"journey to the center of the earth":      "adventure",
	"you don t mess with the zohan":           "comedy",
	"valkyrie":                                "thriller",
	"yes man":                                 "comedy",
	"step brothers":                           "comedy",
	"eagle eye":                               "thriller",
	"the day the earth stood still":           "thriller",
	"cloverfield":                             "horror",
	"27 dresses":                              "romance",
	"jumper":                                  "thriller",
	"beverly hills chihuahua":                 "comedy",
	"pineapple express":                       "comedy",
	"hellboy ii the golden army":              "fantasy",
	"the spiderwick chronicles":               "fantasy",
	"vantage point":                           "thriller",
}

// genreCycle assigns a deterministic genre to movies outside the curated
// map, keyed by popularity rank, so every row has a populated column and
// the mined genre vocabulary covers the full value set.
var genreCycle = []string{"drama", "comedy", "thriller", "action", "horror", "romance"}

// movieGenre resolves the genre column for one movie.
func movieGenre(canonical string, rank int) string {
	if g, ok := movieGenres[textnorm.Normalize(canonical)]; ok {
		return g
	}
	return genreCycle[rank%len(genreCycle)]
}

// attrHash is FNV-1a over the normalized canonical string: a cheap,
// stable source of per-entity variation for the derived camera columns.
func attrHash(canonical string) uint32 {
	h := uint32(2166136261)
	for _, b := range []byte(textnorm.Normalize(canonical)) {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// deriveCameraAttrs populates the camera numeric columns from the
// entity's tier (0 = enthusiast DSLR line ... 3 = feed filler) and a
// model-derived hash. DSLR tiers (0-1) are bodies: price spreads wide and
// the zoom column stays absent; compact tiers (2-3) get the superzoom
// spread. Megapixels land in the 2008-plausible 6-14 range everywhere.
func deriveCameraAttrs(e *Entity, tier int) {
	h := attrHash(e.Canonical)
	switch tier {
	case 0:
		e.PriceUSD = float64(800 + h%1400) // 800 .. 2199
	case 1:
		e.PriceUSD = float64(400 + h%500) // 400 .. 899
	case 2:
		e.PriceUSD = float64(180 + (h>>4)%270) // 180 .. 449
	default:
		e.PriceUSD = float64(90 + (h>>4)%160) // 90 .. 249
	}
	e.Megapixels = float64(6 + (h>>8)%9) // 6 .. 14
	if tier >= 2 {
		e.ZoomX = float64(3 + (h>>16)%16) // 3 .. 18
	}
}
