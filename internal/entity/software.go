package entity

import "fmt"

// The paper's introduction names a third domain beyond movies and cameras:
// software. "Apple's 'Mac OS X' is also known as 'Leopard'" — a codename
// synonym with zero textual overlap, exactly like the camera market names.
// This catalog (D3) is an extension data set exercising the framework's
// generality: operating systems, applications and games of the 2008 era,
// with version-number and codename alias phenomena.

// softwareSpec is the compact literal form of a D3 entry.
type softwareSpec struct {
	name      string // canonical product string
	vendor    string // maps onto Entity.Brand
	product   string // product line, maps onto Entity.Franchise
	version   int    // sequel-style version number, 0 if none
	nicknames []string
}

var software2008 = []softwareSpec{
	{name: "Microsoft Windows Vista", vendor: "Microsoft", product: "Windows", nicknames: []string{"vista", "windows vista"}},
	{name: "Microsoft Windows XP", vendor: "Microsoft", product: "Windows", nicknames: []string{"winxp", "windows xp sp3"}},
	{name: "Apple Mac OS X 10.5", vendor: "Apple", product: "Mac OS X", nicknames: []string{"leopard", "osx leopard"}},
	{name: "Apple Mac OS X 10.4", vendor: "Apple", product: "Mac OS X", nicknames: []string{"tiger", "osx tiger"}},
	{name: "Ubuntu 8.04", vendor: "Canonical", product: "Ubuntu", nicknames: []string{"hardy heron", "ubuntu hardy"}},
	{name: "Fedora 9", vendor: "Red Hat", product: "Fedora", version: 9, nicknames: []string{"sulphur"}},
	{name: "Microsoft Office 2007", vendor: "Microsoft", product: "Office", nicknames: []string{"office 12"}},
	{name: "Adobe Photoshop CS3", vendor: "Adobe", product: "Photoshop", nicknames: []string{"ps cs3"}},
	{name: "Adobe Acrobat 8", vendor: "Adobe", product: "Acrobat", version: 8, nicknames: []string{"acrobat reader 8"}},
	{name: "Adobe Dreamweaver CS3", vendor: "Adobe", product: "Dreamweaver", nicknames: []string{"dw cs3"}},
	{name: "Adobe Flash CS3", vendor: "Adobe", product: "Flash", nicknames: []string{"flash 9"}},
	{name: "Adobe Illustrator CS3", vendor: "Adobe", product: "Illustrator", nicknames: []string{"ai cs3"}},
	{name: "Mozilla Firefox 3", vendor: "Mozilla", product: "Firefox", version: 3, nicknames: []string{"ff3", "firefox 3 download"}},
	{name: "Microsoft Internet Explorer 7", vendor: "Microsoft", product: "Internet Explorer", version: 7, nicknames: []string{"ie7"}},
	{name: "Google Chrome", vendor: "Google", product: "Chrome", nicknames: []string{"chrome browser"}},
	{name: "Apple Safari 3", vendor: "Apple", product: "Safari", version: 3, nicknames: []string{"safari browser"}},
	{name: "Opera 9.5", vendor: "Opera Software", product: "Opera", nicknames: []string{"opera browser"}},
	{name: "Apple iTunes 8", vendor: "Apple", product: "iTunes", version: 8, nicknames: []string{"itunes download"}},
	{name: "Winamp 5.5", vendor: "Nullsoft", product: "Winamp", nicknames: []string{"winamp player"}},
	{name: "VLC Media Player 0.9", vendor: "VideoLAN", product: "VLC", nicknames: []string{"vlc player"}},
	{name: "Windows Media Player 11", vendor: "Microsoft", product: "Windows Media Player", version: 11, nicknames: []string{"wmp11"}},
	{name: "Skype 3.8", vendor: "Skype", product: "Skype", nicknames: []string{"skype download"}},
	{name: "AOL Instant Messenger 6", vendor: "AOL", product: "AIM", version: 6, nicknames: []string{"aim messenger"}},
	{name: "Windows Live Messenger 8.5", vendor: "Microsoft", product: "Windows Live Messenger", nicknames: []string{"msn messenger", "msn 8.5"}},
	{name: "OpenOffice.org 2.4", vendor: "Sun Microsystems", product: "OpenOffice", nicknames: []string{"open office", "ooo 2.4"}},
	{name: "Norton AntiVirus 2008", vendor: "Symantec", product: "Norton AntiVirus", nicknames: []string{"nav 2008"}},
	{name: "McAfee VirusScan Plus 2008", vendor: "McAfee", product: "VirusScan", nicknames: []string{"mcafee 2008"}},
	{name: "AVG Anti-Virus Free 8", vendor: "AVG", product: "AVG Anti-Virus", version: 8, nicknames: []string{"avg free"}},
	{name: "Avast Home Edition 4.8", vendor: "Alwil", product: "Avast", nicknames: []string{"avast antivirus"}},
	{name: "Spybot Search and Destroy 1.5", vendor: "Safer Networking", product: "Spybot", nicknames: []string{"spybot sd"}},
	{name: "CCleaner 2.0", vendor: "Piriform", product: "CCleaner", version: 2, nicknames: []string{"crap cleaner"}},
	{name: "WinRAR 3.8", vendor: "RARLAB", product: "WinRAR", nicknames: []string{"winrar download"}},
	{name: "7-Zip 4.5", vendor: "Igor Pavlov", product: "7-Zip", nicknames: []string{"7zip", "seven zip"}},
	{name: "Nero 8 Ultra Edition", vendor: "Nero AG", product: "Nero", version: 8, nicknames: []string{"nero burning rom"}},
	{name: "Quicken 2008", vendor: "Intuit", product: "Quicken", nicknames: []string{"quicken deluxe"}},
	{name: "TurboTax 2008", vendor: "Intuit", product: "TurboTax", nicknames: []string{"turbo tax"}},
	{name: "AutoCAD 2008", vendor: "Autodesk", product: "AutoCAD", nicknames: []string{"acad 2008"}},
	{name: "Microsoft Visual Studio 2008", vendor: "Microsoft", product: "Visual Studio", nicknames: []string{"vs2008", "vs 9"}},
	{name: "Apple Final Cut Pro 6", vendor: "Apple", product: "Final Cut Pro", version: 6, nicknames: []string{"fcp 6"}},
	{name: "Apple GarageBand 4", vendor: "Apple", product: "GarageBand", version: 4, nicknames: []string{"garage band"}},
	{name: "Google Earth 4.3", vendor: "Google", product: "Google Earth", nicknames: []string{"googleearth"}},
	{name: "Google Picasa 3", vendor: "Google", product: "Picasa", version: 3, nicknames: []string{"picasa download"}},
	{name: "Call of Duty 4 Modern Warfare", vendor: "Activision", product: "Call of Duty", version: 4, nicknames: []string{"cod4", "modern warfare"}},
	{name: "Call of Duty World at War", vendor: "Activision", product: "Call of Duty", version: 5, nicknames: []string{"cod5", "world at war"}},
	{name: "Grand Theft Auto IV", vendor: "Rockstar Games", product: "Grand Theft Auto", version: 4, nicknames: []string{"gta 4", "gta iv"}},
	{name: "Spore", vendor: "Electronic Arts", product: "Spore", nicknames: []string{"spore game"}},
	{name: "Fallout 3", vendor: "Bethesda", product: "Fallout", version: 3, nicknames: []string{"fallout 3 game"}},
	{name: "Left 4 Dead", vendor: "Valve", product: "Left 4 Dead", nicknames: []string{"l4d"}},
	{name: "Team Fortress 2", vendor: "Valve", product: "Team Fortress", version: 2, nicknames: []string{"tf2"}},
	{name: "Counter-Strike Source", vendor: "Valve", product: "Counter-Strike", nicknames: []string{"css", "cs source"}},
	{name: "Half-Life 2 Episode Two", vendor: "Valve", product: "Half-Life", nicknames: []string{"hl2 episode 2", "ep2"}},
	{name: "Portal", vendor: "Valve", product: "Portal", nicknames: []string{"portal game"}},
	{name: "World of Warcraft Wrath of the Lich King", vendor: "Blizzard", product: "World of Warcraft", nicknames: []string{"wotlk", "wow lich king"}},
	{name: "World of Warcraft The Burning Crusade", vendor: "Blizzard", product: "World of Warcraft", nicknames: []string{"tbc", "wow burning crusade"}},
	{name: "StarCraft Brood War", vendor: "Blizzard", product: "StarCraft", nicknames: []string{"broodwar", "sc bw"}},
	{name: "Warcraft III The Frozen Throne", vendor: "Blizzard", product: "Warcraft", version: 3, nicknames: []string{"wc3 tft", "frozen throne"}},
	{name: "Diablo II Lord of Destruction", vendor: "Blizzard", product: "Diablo", version: 2, nicknames: []string{"d2 lod"}},
	{name: "The Sims 2", vendor: "Electronic Arts", product: "The Sims", version: 2, nicknames: []string{"sims2"}},
	{name: "SimCity 4", vendor: "Electronic Arts", product: "SimCity", version: 4, nicknames: []string{"sc4"}},
	{name: "Guitar Hero III Legends of Rock", vendor: "Activision", product: "Guitar Hero", version: 3, nicknames: []string{"gh3"}},
	{name: "Rock Band 2", vendor: "Harmonix", product: "Rock Band", version: 2, nicknames: []string{"rockband 2"}},
	{name: "Halo 3", vendor: "Microsoft", product: "Halo", version: 3, nicknames: []string{"halo3"}},
	{name: "Gears of War 2", vendor: "Microsoft", product: "Gears of War", version: 2, nicknames: []string{"gow 2"}},
	{name: "BioShock", vendor: "2K Games", product: "BioShock", nicknames: []string{"bioshock game"}},
	{name: "Crysis Warhead", vendor: "Electronic Arts", product: "Crysis", nicknames: []string{"crysis expansion"}},
	{name: "Age of Empires III", vendor: "Microsoft", product: "Age of Empires", version: 3, nicknames: []string{"aoe3", "age3"}},
	{name: "Civilization IV", vendor: "2K Games", product: "Civilization", version: 4, nicknames: []string{"civ 4", "civ iv"}},
	{name: "Need for Speed ProStreet", vendor: "Electronic Arts", product: "Need for Speed", nicknames: []string{"nfs prostreet"}},
	{name: "FIFA 09", vendor: "Electronic Arts", product: "FIFA", nicknames: []string{"fifa 2009"}},
	{name: "Madden NFL 09", vendor: "Electronic Arts", product: "Madden NFL", nicknames: []string{"madden 2009"}},
	{name: "Super Smash Bros Brawl", vendor: "Nintendo", product: "Super Smash Bros", nicknames: []string{"ssbb", "brawl"}},
	{name: "Mario Kart Wii", vendor: "Nintendo", product: "Mario Kart", nicknames: []string{"mkwii"}},
	{name: "Wii Fit", vendor: "Nintendo", product: "Wii Fit", nicknames: []string{"wiifit"}},
	{name: "Dead Space", vendor: "Electronic Arts", product: "Dead Space", nicknames: []string{"dead space game"}},
	{name: "Far Cry 2", vendor: "Ubisoft", product: "Far Cry", version: 2, nicknames: []string{"farcry 2"}},
	{name: "Mirror's Edge", vendor: "Electronic Arts", product: "Mirror's Edge", nicknames: []string{"mirrors edge game"}},
	{name: "Assassin's Creed", vendor: "Ubisoft", product: "Assassin's Creed", nicknames: []string{"ac1", "assassins creed game"}},
	{name: "Mass Effect", vendor: "BioWare", product: "Mass Effect", nicknames: []string{"me1", "mass effect game"}},
	{name: "The Elder Scrolls IV Oblivion", vendor: "Bethesda", product: "The Elder Scrolls", version: 4, nicknames: []string{"oblivion", "tes4"}},
	{name: "RuneScape", vendor: "Jagex", product: "RuneScape", nicknames: []string{"rs", "runescape game"}},
}

// SoftwareCount is the size of the D3 extension catalog.
const SoftwareCount = 80

// Software2008 builds the D3 catalog: software products and games of the
// 2008 era. Popularity is table order (big OS releases first); there is no
// dead tail — every entry is a major product.
func Software2008() (*Catalog, error) {
	if len(software2008) != SoftwareCount {
		return nil, fmt.Errorf("entity: software table has %d entries, want %d", len(software2008), SoftwareCount)
	}
	entities := make([]*Entity, len(software2008))
	ranks := make([]int, len(software2008))
	for i, s := range software2008 {
		entities[i] = &Entity{
			Canonical: s.name,
			Brand:     s.vendor,
			Franchise: s.product,
			Sequel:    s.version,
			Nicknames: append([]string(nil), s.nicknames...),
			Year:      2008, // the D3 feed snapshot era
		}
		ranks[i] = i
	}
	assignPopularity(entities, ranks, 0.9, 0)
	return NewCatalog(Software, entities)
}
