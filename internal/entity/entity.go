// Package entity defines the structured-data side of the reproduction: the
// entities whose canonical strings are the input U of the synonym-finding
// problem (paper Section II.B).
//
// Two catalogs mirror the paper's data sets:
//
//   - D1: the titles of 100 top-grossing 2008 movies (Movies2008).
//   - D2: 882 canonical digital-camera names in the style of the 2008 MSN
//     Shopping feed (Cameras2008), generated from a brand x line x model
//     grammar so the token shapes (alphanumeric model codes, line names,
//     brand prefixes) match what the paper's method had to cope with.
//
// Entities carry the metadata the alias model needs (franchise, sequel
// number, subtitle for movies; brand, line, model code, market nicknames for
// cameras) plus a popularity rank that drives Zipf query volume in the
// simulator.
package entity

import (
	"fmt"
	"math"
	"sort"

	"websyn/internal/textnorm"
)

// Kind discriminates the entity domain.
type Kind int

const (
	// Movie entities come from the D1 catalog.
	Movie Kind = iota
	// Camera entities come from the D2 catalog.
	Camera
	// Software entities come from the D3 extension catalog (the paper's
	// third motivating domain: "Mac OS X" = "Leopard").
	Software
)

// String returns the lower-case domain name.
func (k Kind) String() string {
	switch k {
	case Movie:
		return "movie"
	case Camera:
		return "camera"
	case Software:
		return "software"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Entity is one row of structured data: a thing users may refer to by many
// strings. Canonical is the high-quality, formal description a content
// creator would use — the exact string handed to the miner as input.
type Entity struct {
	ID        int    // dense index within its catalog
	Kind      Kind   // domain
	Canonical string // formal data value, e.g. the full movie title

	// Movie metadata (zero values for cameras).
	Franchise string // franchise base name ("Indiana Jones"), "" if standalone
	Sequel    int    // sequel number within the franchise, 0 if none/first
	Subtitle  string // subtitle after the colon, "" if none

	// Camera metadata (zero values for movies).
	Brand string // manufacturer ("Canon")
	Line  string // product line ("PowerShot A", "EOS")
	Model string // model code ("350D", "A590 IS")

	// Nicknames are codified alternative market names that cannot be derived
	// from the canonical string ("Digital Rebel XT" for the EOS 350D,
	// "bond 22" for Quantum of Solace). They seed the hardest synonym class
	// in the paper's motivation.
	Nicknames []string

	// Attribute columns: the structured fields the rewrite stage
	// (internal/rewrite) mines per-domain vocabularies from, so queries
	// like "cheap canon 40d under $500" resolve their non-entity tokens
	// into typed predicates. Zero values mean the column is absent for
	// this entity.
	Year       int     // release year (movies, software)
	Genre      string  // movie genre ("adventure", "comedy", ...)
	PriceUSD   float64 // camera street price in USD
	Megapixels float64 // camera sensor resolution
	ZoomX      float64 // camera optical zoom factor

	// PopRank is the popularity rank within the catalog (0 = most searched).
	// Weight is the entity's share of the domain's query volume; catalog
	// weights sum to 1.
	PopRank int
	Weight  float64
}

// Norm returns the normalized form of the canonical string.
func (e *Entity) Norm() string { return textnorm.Normalize(e.Canonical) }

// Catalog is an immutable collection of entities of one kind with lookup
// indexes.
type Catalog struct {
	kind     Kind
	entities []*Entity
	byNorm   map[string]*Entity
}

// NewCatalog builds a catalog over the given entities. IDs are (re)assigned
// densely in slice order. It returns an error when two entities share a
// normalized canonical string, because the mining input U must be a set.
func NewCatalog(kind Kind, entities []*Entity) (*Catalog, error) {
	c := &Catalog{
		kind:     kind,
		entities: entities,
		byNorm:   make(map[string]*Entity, len(entities)),
	}
	for i, e := range entities {
		e.ID = i
		e.Kind = kind
		n := e.Norm()
		if n == "" {
			return nil, fmt.Errorf("entity: entity %d (%q) normalizes to empty", i, e.Canonical)
		}
		if prev, dup := c.byNorm[n]; dup {
			return nil, fmt.Errorf("entity: %q and %q collide on normalized form %q",
				prev.Canonical, e.Canonical, n)
		}
		c.byNorm[n] = e
	}
	return c, nil
}

// Kind returns the catalog's domain.
func (c *Catalog) Kind() Kind { return c.kind }

// Len returns the number of entities.
func (c *Catalog) Len() int { return len(c.entities) }

// All returns the entities in ID order. Callers must not mutate the slice.
func (c *Catalog) All() []*Entity { return c.entities }

// ByID returns the entity with the given ID, or nil if out of range.
func (c *Catalog) ByID(id int) *Entity {
	if id < 0 || id >= len(c.entities) {
		return nil
	}
	return c.entities[id]
}

// ByNorm returns the entity whose canonical string normalizes to norm, or
// nil.
func (c *Catalog) ByNorm(norm string) *Entity { return c.byNorm[norm] }

// Canonicals returns the canonical strings in ID order — the input set U of
// the synonym finding problem.
func (c *Catalog) Canonicals() []string {
	out := make([]string, len(c.entities))
	for i, e := range c.entities {
		out[i] = e.Canonical
	}
	return out
}

// assignPopularity gives every entity a popularity rank and a Zipf weight.
//
// ranks[i] is the popularity rank of entity i; exponent is the Zipf skew.
// deadTail marks entities whose rank falls in the last deadFraction of the
// catalog as having weight 0 — products that exist in the structured feed
// but that nobody ever searches for. This is the mechanism behind the
// paper's camera hit-ratio being 87% rather than 100%: some catalog rows
// simply never appear in any log.
func assignPopularity(entities []*Entity, ranks []int, exponent, deadFraction float64) {
	n := len(entities)
	cut := n - int(float64(n)*deadFraction)
	weights := make([]float64, n)
	total := 0.0
	for i, e := range entities {
		r := ranks[i]
		e.PopRank = r
		if r >= cut {
			weights[i] = 0
			continue
		}
		w := 1.0 / math.Pow(float64(r+1), exponent)
		weights[i] = w
		total += w
	}
	for i, e := range entities {
		if total > 0 {
			e.Weight = weights[i] / total
		}
	}
}

// SortByPopularity returns the entities ordered by ascending PopRank
// (most popular first). The catalog itself stays in ID order.
func (c *Catalog) SortByPopularity() []*Entity {
	out := append([]*Entity(nil), c.entities...)
	sort.Slice(out, func(i, j int) bool { return out[i].PopRank < out[j].PopRank })
	return out
}
