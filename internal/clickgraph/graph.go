// Package clickgraph builds the bipartite query-URL click graph induced by
// Click Data L.
//
// Two consumers share it: the miner's candidate generation (paper Section
// III.A walks url->query edges to find every query that clicked a
// surrogate), and the random-walk baseline (Craswell & Szummer's walk,
// paper Section IV.B, runs directly on this graph).
package clickgraph

import (
	"sort"

	"websyn/internal/clicklog"
)

// Edge is one weighted adjacency: To is a node index on the opposite side,
// Count the click count.
type Edge struct {
	To    int
	Count int
}

// Graph is the immutable bipartite click graph. Query nodes and page nodes
// have independent dense indexes.
type Graph struct {
	queries  []string
	queryIdx map[string]int
	pages    []int
	pageIdx  map[int]int

	q2p [][]Edge // query node -> page node edges
	p2q [][]Edge // page node -> query node edges

	qTotal []int // total clicks out of each query node
	pTotal []int // total clicks into each page node
}

// Build constructs the graph from the aggregated click log.
func Build(log *clicklog.Log) *Graph {
	g := &Graph{
		queryIdx: make(map[string]int),
		pageIdx:  make(map[int]int),
	}
	// Queries in sorted order for determinism.
	for _, q := range log.ClickedQueries() {
		g.queryIdx[q] = len(g.queries)
		g.queries = append(g.queries, q)
	}
	g.q2p = make([][]Edge, len(g.queries))
	g.qTotal = make([]int, len(g.queries))

	for qi, q := range g.queries {
		pages := log.ClickedPages(q)
		ids := make([]int, 0, len(pages))
		for p := range pages {
			ids = append(ids, p)
		}
		sort.Ints(ids)
		for _, pageID := range ids {
			pi, ok := g.pageIdx[pageID]
			if !ok {
				pi = len(g.pages)
				g.pageIdx[pageID] = pi
				g.pages = append(g.pages, pageID)
				g.p2q = append(g.p2q, nil)
				g.pTotal = append(g.pTotal, 0)
			}
			n := pages[pageID]
			g.q2p[qi] = append(g.q2p[qi], Edge{To: pi, Count: n})
			g.p2q[pi] = append(g.p2q[pi], Edge{To: qi, Count: n})
			g.qTotal[qi] += n
			g.pTotal[pi] += n
		}
	}
	return g
}

// NumQueries returns the number of query nodes.
func (g *Graph) NumQueries() int { return len(g.queries) }

// NumPages returns the number of page nodes.
func (g *Graph) NumPages() int { return len(g.pages) }

// NumEdges returns the number of distinct (query, page) click pairs.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.q2p {
		n += len(es)
	}
	return n
}

// QueryNode returns the node index of a normalized query string.
func (g *Graph) QueryNode(query string) (int, bool) {
	i, ok := g.queryIdx[query]
	return i, ok
}

// QueryText returns the string of a query node.
func (g *Graph) QueryText(node int) string { return g.queries[node] }

// PageNode returns the node index of a page ID.
func (g *Graph) PageNode(pageID int) (int, bool) {
	i, ok := g.pageIdx[pageID]
	return i, ok
}

// PageID returns the page ID of a page node.
func (g *Graph) PageID(node int) int { return g.pages[node] }

// PagesOf returns the page edges of a query node (GL as adjacency).
func (g *Graph) PagesOf(queryNode int) []Edge { return g.q2p[queryNode] }

// QueriesOf returns the query edges of a page node — the reverse walk the
// miner's candidate generation uses.
func (g *Graph) QueriesOf(pageNode int) []Edge { return g.p2q[pageNode] }

// QueryClicks returns the total outgoing click count of a query node.
func (g *Graph) QueryClicks(queryNode int) int { return g.qTotal[queryNode] }

// PageClicks returns the total incoming click count of a page node.
func (g *Graph) PageClicks(pageNode int) int { return g.pTotal[pageNode] }

// Stats summarizes the graph for reports and tests.
type Stats struct {
	Queries     int
	Pages       int
	Edges       int
	TotalClicks int
	MaxQueryDeg int
	MaxPageDeg  int
}

// ComputeStats returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Queries: len(g.queries), Pages: len(g.pages)}
	for qi := range g.queries {
		s.Edges += len(g.q2p[qi])
		s.TotalClicks += g.qTotal[qi]
		if d := len(g.q2p[qi]); d > s.MaxQueryDeg {
			s.MaxQueryDeg = d
		}
	}
	for pi := range g.pages {
		if d := len(g.p2q[pi]); d > s.MaxPageDeg {
			s.MaxPageDeg = d
		}
	}
	return s
}
