package clickgraph

import (
	"testing"
	"testing/quick"

	"websyn/internal/clicklog"
)

// demoLog builds a small log: two queries sharing one page.
func demoLog() *clicklog.Log {
	l := clicklog.NewLog()
	l.AddImpression("alpha")
	l.AddImpression("beta")
	for i := 0; i < 3; i++ {
		l.AddClick("alpha", 100)
	}
	l.AddClick("alpha", 200)
	l.AddClick("beta", 100)
	l.AddClick("beta", 300)
	l.AddClick("beta", 300)
	return l
}

func TestBuildCounts(t *testing.T) {
	g := Build(demoLog())
	if g.NumQueries() != 2 {
		t.Fatalf("queries = %d", g.NumQueries())
	}
	if g.NumPages() != 3 {
		t.Fatalf("pages = %d", g.NumPages())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestNodeLookups(t *testing.T) {
	g := Build(demoLog())
	qn, ok := g.QueryNode("alpha")
	if !ok {
		t.Fatal("alpha missing")
	}
	if g.QueryText(qn) != "alpha" {
		t.Fatal("QueryText mismatch")
	}
	if _, ok := g.QueryNode("gamma"); ok {
		t.Fatal("unknown query found")
	}
	pn, ok := g.PageNode(100)
	if !ok {
		t.Fatal("page 100 missing")
	}
	if g.PageID(pn) != 100 {
		t.Fatal("PageID mismatch")
	}
	if _, ok := g.PageNode(999); ok {
		t.Fatal("unknown page found")
	}
}

func TestAdjacencyAndTotals(t *testing.T) {
	g := Build(demoLog())
	qn, _ := g.QueryNode("alpha")
	if g.QueryClicks(qn) != 4 {
		t.Fatalf("alpha clicks = %d", g.QueryClicks(qn))
	}
	edges := g.PagesOf(qn)
	if len(edges) != 2 {
		t.Fatalf("alpha has %d page edges", len(edges))
	}
	total := 0
	for _, e := range edges {
		total += e.Count
	}
	if total != 4 {
		t.Fatalf("alpha edge counts sum %d", total)
	}

	pn, _ := g.PageNode(100)
	if g.PageClicks(pn) != 4 { // 3 from alpha + 1 from beta
		t.Fatalf("page 100 clicks = %d", g.PageClicks(pn))
	}
	back := g.QueriesOf(pn)
	if len(back) != 2 {
		t.Fatalf("page 100 has %d query edges", len(back))
	}
}

func TestReverseEdgesMirrorForward(t *testing.T) {
	g := Build(demoLog())
	// Every q->p edge must appear as p->q with the same count.
	for qn := 0; qn < g.NumQueries(); qn++ {
		for _, e := range g.PagesOf(qn) {
			found := false
			for _, r := range g.QueriesOf(e.To) {
				if r.To == qn && r.Count == e.Count {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge q%d->p%d (count %d) missing in reverse", qn, e.To, e.Count)
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := Build(demoLog())
	s := g.ComputeStats()
	if s.Queries != 2 || s.Pages != 3 || s.Edges != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalClicks != 7 {
		t.Fatalf("total clicks = %d", s.TotalClicks)
	}
	if s.MaxQueryDeg != 2 || s.MaxPageDeg != 2 {
		t.Fatalf("degrees = %d/%d", s.MaxQueryDeg, s.MaxPageDeg)
	}
}

func TestEmptyLog(t *testing.T) {
	g := Build(clicklog.NewLog())
	if g.NumQueries() != 0 || g.NumPages() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty log produced a non-empty graph")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g1 := Build(demoLog())
	g2 := Build(demoLog())
	if g1.NumQueries() != g2.NumQueries() {
		t.Fatal("query count differs")
	}
	for qn := 0; qn < g1.NumQueries(); qn++ {
		if g1.QueryText(qn) != g2.QueryText(qn) {
			t.Fatal("query node order differs")
		}
	}
	for pn := 0; pn < g1.NumPages(); pn++ {
		if g1.PageID(pn) != g2.PageID(pn) {
			t.Fatal("page node order differs")
		}
	}
}

// Property: total clicks computed from query side equals page side.
func TestQuickClickConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		l := clicklog.NewLog()
		for i, r := range raw {
			q := string(rune('a' + i%7))
			page := int(r % 13)
			l.AddClick(q, page)
		}
		g := Build(l)
		fromQ, fromP := 0, 0
		for qn := 0; qn < g.NumQueries(); qn++ {
			fromQ += g.QueryClicks(qn)
		}
		for pn := 0; pn < g.NumPages(); pn++ {
			fromP += g.PageClicks(pn)
		}
		return fromQ == fromP && fromQ == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
