package websyn

import (
	"fmt"
	"strings"

	"websyn/internal/clickgraph"
	"websyn/internal/stats"
)

// SimStats summarizes a built simulation: the sanity numbers one checks
// before trusting any experiment run on it.
type SimStats struct {
	Dataset  string
	Entities int
	Pages    int

	Impressions int
	Clicks      int
	CTR         float64 // clicks per impression

	DistinctQueries int
	ClickedQueries  int
	GraphPages      int
	GraphEdges      int

	// QueryVolumeGini measures the skew of the query-frequency
	// distribution (Zipf-shaped logs sit around 0.7-0.95).
	QueryVolumeGini float64
	// ClicksPerQuery summarizes per-query click totals.
	ClicksPerQuery stats.Summary
	// PagesPerQuery summarizes |GL(q)| — the click fan-out the miner's
	// IPC measure depends on.
	PagesPerQuery stats.Summary
}

// Stats computes the simulation summary.
func (s *Simulation) Stats() SimStats {
	g := clickgraph.Build(s.Log)
	gs := g.ComputeStats()

	out := SimStats{
		Dataset:         s.Options.Dataset.String(),
		Entities:        s.Catalog.Len(),
		Pages:           s.Corpus.Len(),
		Impressions:     s.Log.TotalImpressions(),
		Clicks:          s.Log.TotalClicks(),
		DistinctQueries: len(s.Log.Queries()),
		ClickedQueries:  gs.Queries,
		GraphPages:      gs.Pages,
		GraphEdges:      gs.Edges,
	}
	if out.Impressions > 0 {
		out.CTR = float64(out.Clicks) / float64(out.Impressions)
	}
	volumes := make([]float64, 0, out.DistinctQueries)
	for _, q := range s.Log.Queries() {
		volumes = append(volumes, float64(s.Log.Impressions(q)))
	}
	out.QueryVolumeGini = stats.Gini(volumes)
	for qn := 0; qn < g.NumQueries(); qn++ {
		out.ClicksPerQuery.AddInt(g.QueryClicks(qn))
		out.PagesPerQuery.AddInt(len(g.PagesOf(qn)))
	}
	return out
}

// String renders the summary as a small report.
func (st SimStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s simulation\n", st.Dataset)
	fmt.Fprintf(&b, "  entities          %d\n", st.Entities)
	fmt.Fprintf(&b, "  pages             %d\n", st.Pages)
	fmt.Fprintf(&b, "  impressions       %d\n", st.Impressions)
	fmt.Fprintf(&b, "  clicks            %d (CTR %.2f)\n", st.Clicks, st.CTR)
	fmt.Fprintf(&b, "  distinct queries  %d (%d with clicks)\n", st.DistinctQueries, st.ClickedQueries)
	fmt.Fprintf(&b, "  click graph       %d pages, %d edges\n", st.GraphPages, st.GraphEdges)
	fmt.Fprintf(&b, "  query volume gini %.2f\n", st.QueryVolumeGini)
	fmt.Fprintf(&b, "  clicks/query      %s\n", st.ClicksPerQuery.String())
	fmt.Fprintf(&b, "  pages/query       %s\n", st.PagesPerQuery.String())
	return b.String()
}
