package websyn

import (
	"io"
	"net/http"
	"strings"

	"websyn/internal/match"
	"websyn/internal/rewrite"
	"websyn/internal/serve"
	"websyn/internal/serve/reload"
)

// Serving re-exports: the online tier over the mined dictionary.
type (
	// Snapshot is the versioned on-disk bundle of serving state
	// (dictionary + entity table + synonyms).
	Snapshot = serve.Snapshot
	// MatchServer is the online matching tier: cache, batch pool,
	// sharded fuzzy index, HTTP handlers.
	MatchServer = serve.Server
	// ServeConfig tunes a MatchServer.
	ServeConfig = serve.Config
	// ServeStats is the /statsz payload.
	ServeStats = serve.Stats
	// MatchResult is the JSON shape of one matched query.
	MatchResult = serve.MatchResult
	// ShardedFuzzyIndex is the partitioned trigram index for concurrent
	// whole-string fuzzy lookup.
	ShardedFuzzyIndex = match.ShardedFuzzyIndex
	// SnapshotMeta records the provenance (path, SHA-256, layout
	// version) of an installed snapshot.
	SnapshotMeta = serve.SnapshotMeta
	// Reloader hot-swaps a running MatchServer onto new snapshots:
	// file watching, canary validation, POST /admin/reload.
	Reloader = reload.Reloader
	// ReloadConfig tunes a Reloader.
	ReloadConfig = reload.Config
	// Registry is the multi-domain serving tier: one process serving
	// several verticals, each with its own generation handle, request
	// cache and reload watcher, behind a federated /v1/match.
	Registry = serve.Registry
	// RegistryStats is the multi-domain /statsz payload.
	RegistryStats = serve.RegistryStats
	// ReloadGroup runs one snapshot watcher per domain with a shared
	// per-domain admin surface.
	ReloadGroup = reload.Group
)

// DefaultFuzzyMinSim is the Dice-similarity threshold snapshots are
// built with unless overridden.
const DefaultFuzzyMinSim = 0.55

// NewMatchServer builds the online tier from a snapshot.
func NewMatchServer(snap *Snapshot, cfg ServeConfig) *MatchServer {
	return serve.NewServer(snap, cfg)
}

// NewMatchServerWithMeta is NewMatchServer recording the boot snapshot's
// provenance (file path, SHA-256) for /admin/snapshot.
func NewMatchServerWithMeta(snap *Snapshot, cfg ServeConfig, meta SnapshotMeta) *MatchServer {
	return serve.NewServerWithMeta(snap, cfg, meta)
}

// NewReloader builds a snapshot hot-reloader for a running server; see
// internal/serve/reload for semantics (poll + canary + atomic swap).
func NewReloader(s *MatchServer, cfg ReloadConfig) (*Reloader, error) {
	return reload.New(s, cfg)
}

// NewRegistry builds an empty multi-domain registry; register each
// vertical's snapshot with Registry.Add.
func NewRegistry(cfg ServeConfig) *Registry { return serve.NewRegistry(cfg) }

// MountProfiling registers the net/http/pprof handlers under
// /debug/pprof/ with mutex and block profiling enabled — the contention
// debugging surface behind matchd/router -pprof. Not part of the
// default Mount: pprof exposes process internals, so listeners opt in.
func MountProfiling(mux *http.ServeMux) { serve.MountProfiling(mux) }

// NewReloadGroup builds an empty per-domain reload watcher group.
func NewReloadGroup() *ReloadGroup { return reload.NewGroup() }

// ReadSnapshot loads a serving snapshot written with Snapshot.WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return serve.ReadSnapshot(r) }

// ReadSnapshotFile loads a serving snapshot from a file.
func ReadSnapshotFile(path string) (*Snapshot, error) { return serve.ReadSnapshotFile(path) }

// ReadSnapshotFileHashed loads a serving snapshot and its streaming
// whole-file SHA-256 hex digest (the provenance hash hot reload keys
// change detection on).
func ReadSnapshotFileHashed(path string) (*Snapshot, string, error) {
	return serve.ReadSnapshotFileHashed(path)
}

// OpenSnapshotMapped loads a serving snapshot with its fuzzy posting
// slabs memory-mapped straight out of the file (current-version
// snapshots), so boot skips the posting decode entirely and the slab
// pages stay shared with the OS page cache. See
// docs/PERFORMANCE.md#memory-model.
func OpenSnapshotMapped(path string) (*Snapshot, error) {
	return serve.OpenSnapshotMapped(path)
}

// OpenSnapshotMappedHashed is OpenSnapshotMapped also returning the hex
// SHA-256 of the file bytes.
func OpenSnapshotMappedHashed(path string) (*Snapshot, string, error) {
	return serve.OpenSnapshotMappedHashed(path)
}

// MineSnapshot runs the offline pipeline end to end — simulation, miner,
// snapshot compilation — the one-call form behind cmd/dictbuild and
// matchd's mine-at-startup mode. minSim <= 0 means DefaultFuzzyMinSim.
func MineSnapshot(ds Dataset, cfg MinerConfig, seed uint64, minSim float64) (*Snapshot, error) {
	sim, err := NewSimulation(Options{Dataset: ds, Seed: seed})
	if err != nil {
		return nil, err
	}
	results, err := sim.MineAll(cfg)
	if err != nil {
		return nil, err
	}
	return sim.BuildSnapshot(results, minSim), nil
}

// BuildSnapshot compiles mined results into a serving snapshot: the
// dictionary via BuildDictionary, the entity table, the per-entity
// synonym listing, the packed fuzzy index precomputed offline so
// servers boot it without re-gramming the dictionary, and the attribute
// vocabulary mined from the catalog's structured columns for the /v2
// rewrite stage. minSim <= 0 means DefaultFuzzyMinSim.
func (s *Simulation) BuildSnapshot(results []*MineResult, minSim float64) *Snapshot {
	if minSim <= 0 {
		minSim = DefaultFuzzyMinSim
	}
	dict := s.BuildDictionary(results)
	snap := &Snapshot{
		Dataset:    s.Options.Dataset.String(),
		MinSim:     minSim,
		Canonicals: s.Catalog.Canonicals(),
		Synonyms:   make(map[string][]string, len(results)),
		Dict:       dict,
		Fuzzy:      dict.NewFuzzyIndex(minSim).Packed(),
		Vocab:      rewrite.Mine(strings.ToLower(s.Options.Dataset.String()), s.Catalog),
	}
	for _, r := range results {
		snap.Synonyms[r.Norm] = r.Synonyms
	}
	return snap
}
